// Command fleet runs a fleet-survival study: B1/B10/B50 lifetime
// quantiles over a large simulated device population for every
// load-balancing strategy × device technology × endurance-σ combination
// of one benchmark, on the order-statistic fleet engine.
//
// The paper ranks its 18 configurations by the deterministic Eq. 4
// lifetime (Fig. 17), which under symmetric endurance variability is
// the fleet *median*. A fleet operator warranties the population tail
// instead — the B1 life, the time by which 1% of devices have failed —
// so the command reports both rankings and whether they agree:
//
//	out/fleet_survival.csv    one row per strategy × technology × σ
//	out/fleet_survival.json   the full study plus per-σ B1-vs-Eq.4 rankings
//
// Defaults reproduce the paper's setup (1024×1024 array, 32-bit
// multiplication, 100 000 iterations, recompile every 100) with one
// million devices per sweep point; -quick drops to a minutes-scale
// pass at reduced iteration count and population.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"pimendure/internal/obs"
	"pimendure/internal/report"
	"pimendure/pim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleet: ")

	run := obs.NewRun("fleet", flag.CommandLine)
	out := flag.String("out", "out", "output directory")
	benchmark := flag.String("benchmark", "mult", "kernel: mult, dot, conv, add, bnn")
	bits := flag.Int("bits", 32, "operand precision (conv defaults to 8)")
	lanes := flag.Int("lanes", 1024, "array lanes (columns)")
	rows := flag.Int("rows", 1024, "array rows")
	iters := flag.Int("iters", 100000, "benchmark iterations per strategy")
	recompile := flag.Int("recompile", 100, "software re-mapping period in iterations")
	seed := flag.Int64("seed", 1, "simulation and draw seed")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS); results are identical for any value")
	devices := flag.Int("devices", 1_000_000, "fleet population per sweep point")
	sigmaList := flag.String("sigmas", "0.3", "comma-separated lognormal endurance shapes")
	quick := flag.Bool("quick", false, "low-fidelity pass (2 000 iterations, 100 000 devices)")
	flag.Parse()
	if *quick {
		*iters = 2000
		*devices = 100_000
	}
	sigmas, err := parseSigmas(*sigmaList)
	if err != nil {
		log.Fatal(err)
	}
	if err := run.Start(); err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	opt := pim.DefaultOptions()
	opt.Lanes, opt.Rows = *lanes, *rows
	bench, err := compile(*benchmark, opt, *bits)
	if err != nil {
		log.Fatal(err)
	}
	rc := pim.RunConfig{Iterations: *iters, RecompileEvery: *recompile, Seed: *seed, Workers: *workers}
	fc := pim.FleetConfig{Devices: *devices, Sigmas: sigmas, Seed: *seed}

	start := time.Now()
	points, err := pim.Fleet(bench, opt, rc, nil, nil, fc)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%d sweep points (%d strategies × %d technologies × %d σ), %s devices in %s",
		len(points), 18, 4, len(sigmas),
		report.Sci(float64(len(points))*float64(*devices)), time.Since(start).Round(time.Millisecond))

	t := pointsTable(bench.Name, points)
	if err := t.WriteMarkdown(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if err := writeFile(*out, "fleet_survival.csv", t.WriteCSV); err != nil {
		log.Fatal(err)
	}

	rankings := rankBySigma(points, sigmas)
	for _, r := range rankings {
		agree := "agrees with"
		if !r.SameWinner {
			agree = "DIFFERS from"
		}
		log.Printf("σ=%.2f: best by B1 is %s, best by Eq.4 (Fig 17) is %s — B1 winner %s the mean-based ranking (full order equal: %v)",
			r.Sigma, r.WinnerB1, r.WinnerEq4, agree, r.SameOrder)
	}

	doc := studyDoc{
		Benchmark: bench.Name, Lanes: *lanes, Rows: *rows,
		Iterations: *iters, RecompileEvery: *recompile,
		Devices: *devices, Seed: *seed, Sigmas: sigmas,
		Points: flatten(points), Rankings: rankings,
	}
	if err := writeFile(*out, "fleet_survival.json", func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}); err != nil {
		log.Fatal(err)
	}

	if err := run.Finish(*out, map[string]any{
		"benchmark": *benchmark, "bits": *bits, "lanes": *lanes, "rows": *rows,
		"iters": *iters, "recompile": *recompile, "devices": *devices,
		"sigmas": *sigmaList, "workers": *workers, "quick": *quick,
	}, *seed, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// studyDoc is the fleet_survival.json document.
type studyDoc struct {
	Benchmark      string      `json:"benchmark"`
	Lanes          int         `json:"lanes"`
	Rows           int         `json:"rows"`
	Iterations     int         `json:"iterations"`
	RecompileEvery int         `json:"recompile_every"`
	Devices        int         `json:"devices"`
	Seed           int64       `json:"seed"`
	Sigmas         []float64   `json:"sigmas"`
	Points         []jsonPoint `json:"points"`
	Rankings       []ranking   `json:"rankings"`
}

// jsonPoint is one sweep point flattened for the JSON artifact (paper
// labels instead of enum values, seconds precomputed).
type jsonPoint struct {
	Strategy   string  `json:"strategy"`
	Technology string  `json:"technology"`
	Sigma      float64 `json:"sigma"`
	Devices    int     `json:"devices"`
	Groups     int     `json:"groups"`
	Cells      int     `json:"cells"`
	Eq4        float64 `json:"eq4_iterations"`
	Mean       float64 `json:"mean_iterations"`
	B1         float64 `json:"b1_iterations"`
	B10        float64 `json:"b10_iterations"`
	B50        float64 `json:"b50_iterations"`
	B1Seconds  float64 `json:"b1_seconds"`
	B50Seconds float64 `json:"b50_seconds"`
}

func flatten(points []pim.FleetPoint) []jsonPoint {
	out := make([]jsonPoint, 0, len(points))
	for _, p := range points {
		out = append(out, jsonPoint{
			Strategy:   p.Strategy.Name(),
			Technology: p.Technology.Name,
			Sigma:      p.Sigma,
			Devices:    p.Devices,
			Groups:     p.Groups,
			Cells:      p.Cells,
			Eq4:        p.DeterministicIterations,
			Mean:       p.MeanIterations,
			B1:         p.Quantiles[0],
			B10:        p.Quantiles[1],
			B50:        p.Quantiles[2],
			B1Seconds:  p.Seconds(p.Quantiles[0]),
			B50Seconds: p.Seconds(p.Quantiles[2]),
		})
	}
	return out
}

// ranking compares the fleet-tail (B1) strategy ordering against the
// paper's deterministic Eq. 4 / Fig. 17 ordering at one σ. Thanks to
// common random numbers a technology change only rescales every sample,
// so the orderings are technology-independent and one comparison per σ
// suffices.
type ranking struct {
	Sigma float64 `json:"sigma"`
	// ByB1 and ByEq4 list strategy labels best-first.
	ByB1  []string `json:"by_b1"`
	ByEq4 []string `json:"by_eq4"`
	// WinnerB1/WinnerEq4 are the respective front-runners; SameWinner
	// and SameOrder summarize the agreement.
	WinnerB1   string `json:"winner_b1"`
	WinnerEq4  string `json:"winner_eq4"`
	SameWinner bool   `json:"same_winner"`
	SameOrder  bool   `json:"same_order"`
}

// rankBySigma builds the per-σ B1-vs-Eq.4 ranking comparison from the
// first technology's points (the ordering is technology-invariant).
func rankBySigma(points []pim.FleetPoint, sigmas []float64) []ranking {
	out := make([]ranking, 0, len(sigmas))
	firstTech := points[0].Technology.Name
	for _, sigma := range sigmas {
		var sub []pim.FleetPoint
		for _, p := range points {
			if p.Sigma == sigma && p.Technology.Name == firstTech {
				sub = append(sub, p)
			}
		}
		byB1 := append([]pim.FleetPoint(nil), sub...)
		sort.SliceStable(byB1, func(i, j int) bool { return byB1[i].Quantiles[0] > byB1[j].Quantiles[0] })
		byEq4 := append([]pim.FleetPoint(nil), sub...)
		sort.SliceStable(byEq4, func(i, j int) bool {
			return byEq4[i].DeterministicIterations > byEq4[j].DeterministicIterations
		})
		r := ranking{Sigma: sigma, SameOrder: true}
		for i := range byB1 {
			r.ByB1 = append(r.ByB1, byB1[i].Strategy.Name())
			r.ByEq4 = append(r.ByEq4, byEq4[i].Strategy.Name())
			if byB1[i].Strategy != byEq4[i].Strategy {
				r.SameOrder = false
			}
		}
		r.WinnerB1, r.WinnerEq4 = r.ByB1[0], r.ByEq4[0]
		r.SameWinner = r.WinnerB1 == r.WinnerEq4
		out = append(out, r)
	}
	return out
}

// pointsTable flattens the study into the fleet_survival table.
func pointsTable(benchName string, points []pim.FleetPoint) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Fleet survival — %s: first-failure B-lives (iterations) vs the Eq. 4 deterministic value", benchName),
		"strategy", "technology", "sigma", "devices", "groups", "cells",
		"Eq.4 iterations", "mean", "B1", "B10", "B50", "B1 (s)", "B50 (s)")
	for _, p := range points {
		t.AddRow(p.Strategy.Name(), p.Technology.Name, report.Fixed(p.Sigma, 2),
			strconv.Itoa(p.Devices), strconv.Itoa(p.Groups), strconv.Itoa(p.Cells),
			report.Sci(p.DeterministicIterations), report.Sci(p.MeanIterations),
			report.Sci(p.Quantiles[0]), report.Sci(p.Quantiles[1]), report.Sci(p.Quantiles[2]),
			report.Sci(p.Seconds(p.Quantiles[0])), report.Sci(p.Seconds(p.Quantiles[2])))
	}
	return t
}

func parseSigmas(list string) ([]float64, error) {
	var out []float64
	for _, field := range strings.Split(list, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		v, err := strconv.ParseFloat(field, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad sigma %q (want a non-negative float list like \"0.3,0.6\")", field)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty sigma list")
	}
	return out, nil
}

func compile(name string, opt pim.Options, bits int) (*pim.Benchmark, error) {
	switch name {
	case "mult":
		return pim.NewParallelMult(opt, bits)
	case "dot":
		return pim.NewDotProduct(opt, opt.Lanes, bits)
	case "conv":
		if bits == 32 {
			bits = 8
		}
		return pim.NewConvolution(opt, 4, 3, bits)
	case "add":
		return pim.NewVectorAdd(opt, bits)
	case "bnn":
		return pim.NewBNNLayer(opt, 64)
	}
	return nil, fmt.Errorf("unknown benchmark %q (mult, dot, conv, add, bnn)", name)
}

// writeFile creates a file under dir and streams fn to it.
func writeFile(dir, name string, fn func(io.Writer) error) error {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}
