// Command banks stripes one benchmark across a multi-bank PIM
// organization (channel × bank group × bank) and reports how lifetime
// scales with bank count under each scheduling policy — the
// array-of-arrays experiment the paper's single-array analysis cannot
// answer: does striping across 16 banks buy ~16× lifetime?
//
//	banks -bench mult -org ddr4 -policy all -iters 20000
//	banks -banks 16 -policy wear-aware -sigma 0.1 -sample 10
//
// It writes out/banks_scaling.{csv,json} (the per-policy bank-count
// lifetime-scaling curve, single bank up to the full organization) and
// out/banks_policy.{csv,json} (the full organization's per-bank table
// per policy), plus the usual run manifest. With -sample N every bank
// records a wear trajectory (live at -serve /series and
// /wear.png?name=, exported as series_*.{csv,json} on exit).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"strings"

	"pimendure/internal/mapping"
	"pimendure/internal/obs"
	"pimendure/internal/report"
	"pimendure/pim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("banks: ")

	run := obs.NewRun("banks", flag.CommandLine)
	benchName := flag.String("bench", "mult", "benchmark: mult, dot, conv, add")
	bits := flag.Int("bits", 32, "operand precision (8 for conv by default)")
	lanes := flag.Int("lanes", 1024, "array lanes per bank")
	rows := flag.Int("rows", 1024, "array rows per bank")
	within := flag.String("within", "Ra", "within-lane strategy: St, Ra, Bs")
	between := flag.String("between", "St", "between-lane strategy: St, Ra, Bs")
	hw := flag.Bool("hw", false, "enable hardware free-bit renaming")
	iters := flag.Int("iters", 20000, "total benchmark iterations striped across the banks")
	recompile := flag.Int("recompile", 100, "per-bank software re-mapping period")
	block := flag.Int("block", 0, "scheduling block in iterations (0 = one recompile epoch; must be a multiple of -recompile)")
	pressure := flag.Int("pressure", 0, "locality-aware per-group iterations before spilling to the next bank group (0 = fair share)")
	sigma := flag.Float64("sigma", 0, "lognormal bank-to-bank endurance variation (0 = identical banks; drawn from -seed)")
	orgName := flag.String("org", "ddr4", "organization preset: single, ddr4, hbm3")
	banks := flag.Int("banks", 0, "override the total bank count (scales the preset's hierarchy; 0 = preset size)")
	policy := flag.String("policy", "all", "scheduling policy: round-robin, wear-aware, locality-aware, all")
	sample := flag.Int("sample", 0, "record per-bank wear telemetry every N recompile epochs (0 disables)")
	seed := flag.Int64("seed", 1, "random seed (bank b simulates with seed+b; also seeds the endurance draw)")
	tech := flag.String("tech", "MRAM", "technology: MRAM, RRAM, PCM, MRAM-projected")
	outDir := flag.String("out", "out", "artifact + manifest directory")
	flag.Parse()
	if err := run.Start(); err != nil {
		log.Fatal(err)
	}

	opt := pim.Options{Lanes: *lanes, Rows: *rows, PresetOutputs: true, NANDBasis: true}
	bench, err := makeBench(opt, *benchName, *bits)
	if err != nil {
		log.Fatal(err)
	}
	w, err := mapping.ParseStrategy(*within)
	if err != nil {
		log.Fatal(err)
	}
	btw, err := mapping.ParseStrategy(*between)
	if err != nil {
		log.Fatal(err)
	}
	strat := pim.Strategy{Within: w, Between: btw, Hw: *hw}

	var technology pim.Technology
	for _, t := range pim.Technologies() {
		if strings.EqualFold(t.Name, *tech) {
			technology = t
		}
	}
	if technology.Name == "" {
		log.Fatalf("unknown technology %q", *tech)
	}

	org, err := orgNamed(*orgName)
	if err != nil {
		log.Fatal(err)
	}
	org = orgForBanks(org, *banks)
	policies, err := selectPolicies(*policy)
	if err != nil {
		log.Fatal(err)
	}

	rc := pim.RunConfig{
		Iterations: *iters, RecompileEvery: *recompile,
		Seed: *seed, SampleEvery: *sample,
	}
	cfg := pim.BankConfig{
		Org: org, BlockIters: *block, PressureIters: *pressure, Sigma: *sigma,
	}
	// One cached plan serves every (policy, bank count) point.
	cache := pim.NewPlanCache(2)
	stripe := func(p pim.BankPolicy, o pim.Organization) *pim.StripeResult {
		c := cfg
		c.Policy = p
		c.Org = o
		res, _, err := cache.BankStripe(bench, opt, rc, strat, technology, c)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("benchmark:    %s\n", bench.Description)
	fmt.Printf("strategy:     %s   iterations: %d (recompile every %d)\n", strat.Name(), *iters, *recompile)
	fmt.Printf("organization: %s\n", org)

	// Lifetime-scaling curve: single bank up to the full organization,
	// per policy. The single-bank point is policy-independent (every
	// block lands on the one bank), so it is computed once and reused as
	// every policy's baseline.
	points := curvePoints(org.TotalBanks())
	single := stripe(pim.RoundRobinBanks, pim.SingleBank())
	baseline := single.SystemIterationsToFailure

	scaling := report.NewTable(
		fmt.Sprintf("Lifetime scaling with bank count (%s, %s, %s)", bench.Name, strat.Name(), technology.Name),
		"policy", "banks", "banks touched", "system iters-to-failure", "scaling ×", "bank CoV", "spills", "lifetime")
	var curve []scalingPoint
	for _, p := range policies {
		for _, n := range points {
			res := single
			if n > 1 {
				res = stripe(p, orgForBanks(org, n))
			}
			pt := scalingPoint{
				Policy: p.String(), Banks: n, Org: res.Org.Name,
				Iterations:           res.TotalIterations,
				SystemItersToFailure: res.SystemIterationsToFailure,
				ScalingX:             res.SystemIterationsToFailure / baseline,
				BankCoV:              res.BankCoV,
				BanksTouched:         res.BanksTouched,
				Spills:               res.Spills,
				LifetimeDays:         lifetimeDays(res, technology),
			}
			curve = append(curve, pt)
			scaling.AddRow(pt.Policy, fmt.Sprint(pt.Banks), fmt.Sprint(pt.BanksTouched),
				report.Sci(pt.SystemItersToFailure), report.Times(pt.ScalingX),
				report.Fixed(pt.BankCoV, 3), fmt.Sprint(pt.Spills),
				fmt.Sprintf("%.2f days", pt.LifetimeDays))
		}
	}
	if err := scaling.WriteMarkdown(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Full-organization per-bank table per policy.
	perBank := report.NewTable(
		fmt.Sprintf("Per-bank wear across %s", org),
		"policy", "bank", "ch", "grp", "iterations", "blocks", "max writes", "mean writes", "CoV", "iters-to-failure")
	var bankRows []bankRow
	for _, p := range policies {
		res := stripe(p, org)
		for _, b := range res.Banks {
			if b.Iterations == 0 {
				continue
			}
			bankRows = append(bankRows, bankRow{
				Policy: p.String(), Bank: b.Bank, Channel: b.Channel, Group: b.Group,
				Iterations: b.Iterations, Blocks: b.Blocks,
				MaxWrites: b.MaxWrites, MeanWrites: b.MeanWrites, CoV: b.CoV,
				ItersToFailure: b.IterationsToFailure,
			})
			perBank.AddRow(p.String(), fmt.Sprint(b.Bank), fmt.Sprint(b.Channel), fmt.Sprint(b.Group),
				fmt.Sprint(b.Iterations), fmt.Sprint(b.Blocks), fmt.Sprint(b.MaxWrites),
				report.Fixed(b.MeanWrites, 1), report.Fixed(b.CoV, 3), report.Sci(b.IterationsToFailure))
		}
	}
	if err := perBank.WriteMarkdown(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	writeCSV(filepath.Join(*outDir, "banks_scaling.csv"), scaling)
	writeCSV(filepath.Join(*outDir, "banks_policy.csv"), perBank)
	writeJSON(filepath.Join(*outDir, "banks_scaling.json"), curve)
	writeJSON(filepath.Join(*outDir, "banks_policy.json"), bankRows)

	if err := run.Finish(*outDir, map[string]any{
		"bench": *benchName, "bits": *bits, "lanes": *lanes, "rows": *rows,
		"within": *within, "between": *between, "hw": *hw,
		"iters": *iters, "recompile": *recompile, "block": *block,
		"pressure": *pressure, "sigma": *sigma, "org": org.String(),
		"banks": org.TotalBanks(), "policy": *policy, "sample": *sample, "tech": *tech,
	}, *seed, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// scalingPoint is one row of banks_scaling.json.
type scalingPoint struct {
	Policy               string  `json:"policy"`
	Banks                int     `json:"banks"`
	Org                  string  `json:"org"`
	Iterations           int     `json:"iterations"`
	SystemItersToFailure float64 `json:"system_iters_to_failure"`
	ScalingX             float64 `json:"scaling_x"`
	BankCoV              float64 `json:"bank_cov"`
	BanksTouched         int     `json:"banks_touched"`
	Spills               int     `json:"spills"`
	LifetimeDays         float64 `json:"lifetime_days"`
}

// bankRow is one row of banks_policy.json (touched banks only — the
// untouched ones carry an infinite projection JSON cannot encode).
type bankRow struct {
	Policy         string  `json:"policy"`
	Bank           int     `json:"bank"`
	Channel        int     `json:"channel"`
	Group          int     `json:"group"`
	Iterations     int     `json:"iterations"`
	Blocks         int     `json:"blocks"`
	MaxWrites      uint64  `json:"max_writes"`
	MeanWrites     float64 `json:"mean_writes"`
	CoV            float64 `json:"cov"`
	ItersToFailure float64 `json:"iters_to_failure"`
}

// lifetimeDays converts the system iterations-to-failure into wall-clock
// days using the benchmark's sequential latency and the device step time.
func lifetimeDays(res *pim.StripeResult, tech pim.Technology) float64 {
	for _, b := range res.Banks {
		if b.Dist != nil {
			return res.SystemIterationsToFailure * float64(b.Dist.StepsPerIteration) * tech.SwitchSeconds / 86400
		}
	}
	return math.NaN()
}

// curvePoints enumerates the bank counts of the scaling curve: powers of
// two up to (and always including) the full organization.
func curvePoints(total int) []int {
	var out []int
	for n := 1; n < total; n *= 2 {
		out = append(out, n)
	}
	return append(out, total)
}

// orgNamed resolves an organization preset by name.
func orgNamed(name string) (pim.Organization, error) {
	for _, o := range pim.Organizations() {
		if strings.EqualFold(o.Name, name) {
			return o, nil
		}
	}
	return pim.Organization{}, fmt.Errorf("unknown organization %q (want single, ddr4, hbm3)", name)
}

// orgForBanks scales an organization preset to n total banks, keeping
// the preset's banks-per-group where it divides evenly (so the group
// hierarchy — and locality-aware spilling — stays meaningful) and
// falling back to a flat organization otherwise.
func orgForBanks(base pim.Organization, n int) pim.Organization {
	switch {
	case n <= 0 || n == base.TotalBanks():
		return base
	case n == 1:
		return pim.SingleBank()
	case n%base.Banks == 0:
		return pim.Organization{
			Name:     fmt.Sprintf("%s-%db", base.Name, n),
			Channels: 1, BankGroups: n / base.Banks, Banks: base.Banks,
			Notes: fmt.Sprintf("%s hierarchy scaled to %d banks", base.Name, n),
		}
	default:
		return pim.FlatOrganization(n)
	}
}

// selectPolicies parses -policy ("all" or one policy name).
func selectPolicies(s string) ([]pim.BankPolicy, error) {
	if strings.EqualFold(s, "all") {
		return pim.BankPolicies(), nil
	}
	p, err := pim.ParseBankPolicy(s)
	if err != nil {
		return nil, err
	}
	return []pim.BankPolicy{p}, nil
}

// writeCSV writes one report table as CSV.
func writeCSV(path string, t *report.Table) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := t.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// writeJSON writes one artifact as indented JSON.
func writeJSON(path string, v any) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func makeBench(opt pim.Options, name string, bits int) (*pim.Benchmark, error) {
	switch name {
	case "mult":
		return pim.NewParallelMult(opt, bits)
	case "dot":
		n := 1
		for n*2 <= opt.Lanes {
			n *= 2
		}
		return pim.NewDotProduct(opt, n, bits)
	case "conv":
		if bits == 32 {
			bits = 8 // the paper's convolution precision
		}
		return pim.NewConvolution(opt, 4, 3, bits)
	case "add":
		return pim.NewVectorAdd(opt, bits)
	}
	return nil, fmt.Errorf("unknown benchmark %q (want mult, dot, conv, add)", name)
}
