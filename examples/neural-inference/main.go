// Neural inference: the paper's motivating embedded scenario — a binarized
// neural network layer running convolution in nonvolatile memory. This
// example runs real inferences on the bit-accurate array simulator (each
// group of 4 lanes applies a 4×3 filter position and thresholds the
// result), then asks the endurance question: how many inferences does the
// accelerator survive on each memory technology, and how much does load
// balancing buy?
//
//	go run ./examples/neural-inference
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pimendure/pim"
)

func main() {
	log.SetFlags(0)

	opt := pim.Options{Lanes: 128, Rows: 1024, PresetOutputs: true, NANDBasis: true}
	const groupLanes, multsPerLane, bits = 4, 3, 8

	bench, err := pim.NewConvolution(opt, groupLanes, multsPerLane, bits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("benchmark:", bench.Description)

	// Fabricate a filter application: neurons and weights per lane, plus
	// a per-group threshold. Slots are laid out by the compiler as
	// (neuron, weight) pairs per multiplication, then the threshold
	// vector in the group-head lanes.
	rng := rand.New(rand.NewSource(7))
	neurons := make([]uint8, opt.Lanes*multsPerLane)
	weights := make([]uint8, opt.Lanes*multsPerLane)
	for i := range neurons {
		neurons[i] = uint8(rng.Intn(256))
		weights[i] = uint8(rng.Intn(256))
	}
	// Threshold chosen near the expected sum so outputs are mixed.
	const threshold = 12 * 127 * 127
	data := func(slot, lane int) bool {
		pair := slot / (2 * bits)
		within := slot % (2 * bits)
		if pair < multsPerLane {
			idx := lane*multsPerLane + pair
			if within < bits {
				return neurons[idx]>>uint(within)&1 == 1
			}
			return weights[idx]>>uint(within-bits)&1 == 1
		}
		// Remaining slots: the threshold vector (group-head lanes only).
		tbit := slot - 2*bits*multsPerLane
		return threshold>>uint(tbit)&1 == 1
	}

	if err := pim.Verify(bench, opt, pim.StaticStrategy, data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional check: all %d filter positions thresholded exactly\n\n", opt.Lanes/groupLanes)

	// Endurance: compare static layout vs the best-practice configuration
	// across technologies.
	rc := pim.RunConfig{Iterations: 20000, RecompileEvery: 100, Seed: 3}
	static, err := pim.Run(bench, opt, rc, pim.StaticStrategy, pim.MRAM())
	if err != nil {
		log.Fatal(err)
	}
	best, err := pim.Run(bench, opt, rc,
		pim.Strategy{Within: pim.Random, Between: pim.Random, Hw: true}, pim.MRAM())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lane utilization: %.1f%% (one lane in %d also computes the group sum)\n",
		static.Utilization*100, groupLanes)
	fmt.Printf("balancing improvement: %.2f× (StxSt -> RaxRa+Hw)\n\n",
		static.MaxWritesPerIteration/best.MaxWritesPerIteration)

	fmt.Printf("%-16s %-12s %-22s %s\n", "technology", "endurance", "inferences to failure", "lifetime (RaxRa+Hw)")
	for _, tech := range pim.Technologies() {
		r, err := pim.Run(bench, opt, rc,
			pim.Strategy{Within: pim.Random, Between: pim.Random, Hw: true}, tech)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %-12.0e %-22.3g %.2f days\n",
			tech.Name, tech.Endurance, r.Lifetime.IterationsToFailure, r.Lifetime.Days())
	}
	fmt.Println("\nthe paper's conclusion in one table: only (projected) MTJ endurance",
		"\nsustains continuous in-memory inference for useful lifetimes.")
}
