// Wear leveling: sweep all 18 load-balancing configurations of the paper
// on the dot-product benchmark (the hardest case: its reduction funnels
// writes into low-numbered lanes), rank them by lifetime improvement
// (Fig. 17c), and render the before/after write-density heatmaps.
//
//	go run ./examples/wear-leveling
package main

import (
	"fmt"
	"log"
	"os"

	"pimendure/pim"
)

func main() {
	log.SetFlags(0)

	opt := pim.Options{Lanes: 256, Rows: 1024, PresetOutputs: true, NANDBasis: true}
	bench, err := pim.NewDotProduct(opt, 256, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("benchmark:", bench.Description)

	rc := pim.RunConfig{Iterations: 5000, RecompileEvery: 100, Seed: 11}
	fmt.Printf("sweeping %d configurations × %d iterations...\n\n", len(pim.AllStrategies()), rc.Iterations)
	results, err := pim.Sweep(bench, opt, rc, nil, pim.MRAM())
	if err != nil {
		log.Fatal(err)
	}
	imps, err := pim.Improvements(results)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-14s %-16s %-10s %s\n", "config", "improvement", "max writes/iter", "max/mean", "days (MRAM)")
	for _, im := range imps {
		fmt.Printf("%-10s %-14.3f %-16.2f %-10.3f %.1f\n",
			im.Strategy.Name(), im.Factor, im.Result.MaxWritesPerIteration,
			im.Result.Imbalance, im.Result.Lifetime.Days())
	}

	// Render the two ends of the ranking as heatmaps.
	for _, im := range []pim.Improvement{imps[len(imps)-1], imps[0]} {
		grid, err := pim.Heatmap(im.Result.Dist, 128)
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("dot_%s.png", im.Strategy.Name())
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := pim.WriteHeatmapPNG(f, grid, 4); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s (%s: max/mean %.2f)", name, im.Strategy.Name(), im.Result.Imbalance)
	}
	fmt.Println()

	// The paper's §5 observation: the write distribution is what moves.
	worst, best := imps[len(imps)-1].Result, imps[0].Result
	fmt.Printf("\nthe reduction concentrates writes: StxSt max/mean = %.2f; %s flattens it to %.2f,\n",
		worst.Imbalance, best.Strategy.Name(), best.Imbalance)
	fmt.Printf("extending time-to-first-failure from %.1f to %.1f days on MRAM.\n",
		worst.Lifetime.Days(), best.Lifetime.Days())
}
