// Technology explorer: the device-level view of the paper's conclusion.
// For each NVM technology (§2.1), sweep its cited endurance range and
// report how long a PIM array doing continuous multiplication survives —
// then show how quickly failed cells make lanes unusable (Fig. 11b) and
// what lane-set partitioning recovers (§3.3).
//
//	go run ./examples/technology-explorer
package main

import (
	"fmt"
	"log"

	"pimendure/pim"
)

func main() {
	log.SetFlags(0)

	opt := pim.Options{Lanes: 256, Rows: 1024, PresetOutputs: true, NANDBasis: true}
	bench, err := pim.NewParallelMult(opt, 32)
	if err != nil {
		log.Fatal(err)
	}
	rc := pim.RunConfig{Iterations: 5000, RecompileEvery: 100, Seed: 5}
	balanced := pim.Strategy{Within: pim.Random, Between: pim.Random, Hw: true}

	fmt.Println("continuous 32-bit multiplication,", opt.Lanes, "lanes, best-practice balancing (RaxRa+Hw)")
	fmt.Printf("\n%-16s %-24s %s\n", "technology", "endurance (min..max)", "lifetime at min .. max")
	for _, tech := range pim.Technologies() {
		lo, err := pim.Run(bench, opt, rc, balanced, tech.WithEndurance(tech.EnduranceMin))
		if err != nil {
			log.Fatal(err)
		}
		hi, err := pim.Run(bench, opt, rc, balanced, tech.WithEndurance(tech.EnduranceMax))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %-8.0e .. %-12.0e %s .. %s\n",
			tech.Name, tech.EnduranceMin, tech.EnduranceMax,
			humanDays(lo.Lifetime.Days()), humanDays(hi.Lifetime.Days()))
	}

	// Fig. 11b: what failure does to capacity.
	fmt.Println("\nusable fraction of each lane as cells fail (closed form, by lane width):")
	fmt.Printf("%-14s %8s %8s %8s\n", "failed cells", "256", "512", "1024")
	for _, f := range []float64{0.0005, 0.001, 0.005, 0.01} {
		fmt.Printf("%13.2f%% %8.3f %8.3f %8.3f\n", f*100,
			pim.UsableFraction(256, f), pim.UsableFraction(512, f), pim.UsableFraction(1024, f))
	}

	pts, err := pim.FaultCurve(256, 256, []float64{0.002}, 300, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMonte Carlo check at 0.2%% failed (256 lanes): %.3f usable vs %.3f closed form\n",
		pts[0].UsableMC, pts[0].UsableClosed)
	fmt.Println("\neven a fraction of a percent of failed cells erases most of a lane —")
	fmt.Println("the paper's case for device-level endurance progress over architectural patches.")
}

func humanDays(d float64) string {
	switch {
	case d < 1.0/24/30:
		return fmt.Sprintf("%.1f s", d*86400)
	case d < 1.0/12:
		return fmt.Sprintf("%.1f min", d*1440)
	case d < 2:
		return fmt.Sprintf("%.1f h", d*24)
	case d < 730:
		return fmt.Sprintf("%.1f days", d)
	default:
		return fmt.Sprintf("%.1f years", d/365)
	}
}
