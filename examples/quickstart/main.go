// Quickstart: compile the paper's headline benchmark (embarrassingly
// parallel 32-bit multiplication), run it under a load-balancing strategy,
// and estimate how long the nonvolatile array survives.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pimendure/pim"
)

func main() {
	log.SetFlags(0)

	// A 256×1024 array keeps the example snappy; pim.DefaultOptions()
	// gives the paper's full 1024×1024 setup.
	opt := pim.Options{Lanes: 256, Rows: 1024, PresetOutputs: true, NANDBasis: true}

	bench, err := pim.NewParallelMult(opt, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("benchmark:", bench.Description)

	// First: prove the in-memory circuit actually multiplies. Verify runs
	// one bit-accurate iteration against the reference model.
	data := func(slot, lane int) bool { return (slot*2654435761+lane*40503)%5 < 2 }
	if err := pim.Verify(bench, opt, pim.StaticStrategy, data); err != nil {
		log.Fatal(err)
	}
	fmt.Println("functional check: every lane's product exact")

	// Then: endurance. Run 10 000 back-to-back iterations under the
	// static layout and under random within-lane shuffling with hardware
	// renaming, and compare lifetimes on MRAM (10^12 writes/cell).
	rc := pim.RunConfig{Iterations: 10000, RecompileEvery: 100, Seed: 42}
	static, err := pim.Run(bench, opt, rc, pim.StaticStrategy, pim.MRAM())
	if err != nil {
		log.Fatal(err)
	}
	balanced, err := pim.Run(bench, opt, rc,
		pim.Strategy{Within: pim.Random, Between: pim.Static, Hw: true}, pim.MRAM())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-12s %-16s %-14s %s\n", "strategy", "max writes/iter", "max/mean", "lifetime")
	for _, r := range []*pim.Result{static, balanced} {
		fmt.Printf("%-12s %-16.2f %-14.3f %.1f days\n",
			r.Strategy.Name(), r.MaxWritesPerIteration, r.Imbalance, r.Lifetime.Days())
	}
	fmt.Printf("\nbalancing extends lifetime %.2f× — against an Eq.2 upper bound of %.1f days\n",
		balanced.Lifetime.Seconds/static.Lifetime.Seconds,
		pim.UpperBoundSeconds(opt.Rows, opt.Lanes, pim.MRAM())/86400)
	fmt.Printf("the same array on RRAM (10^8 writes/cell) would last %.1f minutes\n",
		pim.UpperBoundSeconds(opt.Rows, opt.Lanes, pim.RRAM())/60)
}
