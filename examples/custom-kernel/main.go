// Custom kernel: define your own per-lane computation as an expression
// DAG, compile it to a PIM trace, verify it bit-exactly, and put it
// through the endurance pipeline — no hand scheduling.
//
// The kernel here is a fused multiply-accumulate with a ReLU-style
// threshold, the inner loop of quantized inference:
//
//	out = (a*b + c) >= threshold
//
//	go run ./examples/custom-kernel
package main

import (
	"fmt"
	"log"

	"pimendure/pim"
	"pimendure/pim/kernel"
)

func main() {
	log.SetFlags(0)

	opt := pim.Options{Lanes: 128, Rows: 1024, PresetOutputs: true, NANDBasis: true}

	a := kernel.Input(8)
	b := kernel.Input(8)
	c := kernel.Input(16)
	thr := kernel.Input(17)
	mac := kernel.Add(kernel.Mul(a, b), c)
	bench, err := kernel.Compile(opt, "mac-threshold",
		kernel.Output(mac),
		kernel.Output(kernel.GE(mac, thr)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled:", bench.Description)
	st := bench.Trace.ComputeStats(opt.PresetOutputs)
	fmt.Printf("trace: %d gates, %d steps (%.2f µs at 3 ns), %d cell writes per lane-iteration\n",
		st.Gates, st.Steps, float64(st.Steps)*3e-3, st.CellWrites/int64(opt.Lanes))

	// Bit-exact verification against the auto-derived reference model,
	// under an aggressive re-mapping configuration.
	data := func(slot, lane int) bool { return (slot*2654435761+lane*40503)%7 < 3 }
	if err := pim.Verify(bench, opt,
		pim.Strategy{Within: pim.Random, Between: pim.Random, Hw: true}, data); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: every lane exact under RaxRa+Hw")

	// Endurance: how long can this kernel run back to back?
	rc := pim.RunConfig{Iterations: 5000, RecompileEvery: 100, Seed: 1}
	static, err := pim.Run(bench, opt, rc, pim.StaticStrategy, pim.MRAM())
	if err != nil {
		log.Fatal(err)
	}
	best, err := pim.Run(bench, opt, rc,
		pim.Strategy{Within: pim.Random, Between: pim.Random, Hw: true}, pim.MRAM())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlifetime on MRAM:  StxSt %.1f days  →  RaxRa+Hw %.1f days (%.2f×)\n",
		static.Lifetime.Days(), best.Lifetime.Days(),
		static.MaxWritesPerIteration/best.MaxWritesPerIteration)

	// And the energy bill per iteration, per technology.
	fmt.Println("\nenergy per iteration:")
	for _, m := range pim.EnergyModels() {
		br, err := pim.EnergyPerIteration(bench, opt, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %.3g J\n", m.Name, br.Total())
	}
}
