package pim_test

import (
	"bytes"
	"testing"

	"pimendure/internal/obs"
	"pimendure/pim"
)

// Sweep shares one WearPlan across all 18 strategies; sharing must
// change nothing observable — every sweep result must equal the result
// of an individual Run (which builds its own plan on demand), bit for
// bit on the distribution and exactly on the derived figures.
func TestSweepMatchesIndividualRuns(t *testing.T) {
	opt := pim.Options{Lanes: 8, Rows: 96, PresetOutputs: true, NANDBasis: true}
	bench, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	rc := pim.RunConfig{Iterations: 23, RecompileEvery: 7, Seed: 11, Workers: 3}
	results, err := pim.Sweep(bench, opt, rc, nil, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 18 {
		t.Fatalf("sweep returned %d results, want 18", len(results))
	}
	for _, r := range results {
		solo, err := pim.Run(bench, opt, rc, r.Strategy, pim.MRAM())
		if err != nil {
			t.Fatalf("%s: %v", r.Strategy.Name(), err)
		}
		if !r.Dist.Equal(solo.Dist) {
			t.Errorf("%s: sweep distribution differs from individual Run", r.Strategy.Name())
		}
		if r.MaxWritesPerIteration != solo.MaxWritesPerIteration ||
			r.Utilization != solo.Utilization ||
			r.Lifetime != solo.Lifetime ||
			r.Imbalance != solo.Imbalance {
			t.Errorf("%s: sweep derived figures differ from individual Run", r.Strategy.Name())
		}
	}
}

// With several St×St entries in the input (e.g. concatenated sweeps),
// Improvements must baseline against the first occurrence,
// deterministically — not silently keep the last match.
func TestImprovementsFirstBaselineWins(t *testing.T) {
	ra := pim.Strategy{Within: pim.Random, Between: pim.Random}
	results := []*pim.Result{
		{Strategy: pim.StaticStrategy, MaxWritesPerIteration: 8},
		{Strategy: ra, MaxWritesPerIteration: 2},
		{Strategy: pim.StaticStrategy, MaxWritesPerIteration: 100},
	}
	imps, err := pim.Improvements(results)
	if err != nil {
		t.Fatal(err)
	}
	byStrat := map[pim.Strategy]float64{}
	for _, im := range imps {
		if _, dup := byStrat[im.Strategy]; !dup {
			byStrat[im.Strategy] = im.Factor
		}
	}
	// Baseline 8 (the first St×St): Ra×Ra improves 4×. Against the last
	// occurrence (100) it would report 50×.
	if got := byStrat[ra]; got != 4 {
		t.Errorf("RaxRa improvement = %v, want 4 (first St×St baseline)", got)
	}
	if got := byStrat[pim.StaticStrategy]; got != 1 {
		t.Errorf("first St×St improvement over itself = %v, want 1", got)
	}
}

// A sampled Sweep used to funnel all 18 runs through the single global
// SetWearPNG hook, each overwriting the last nondeterministically. Runs
// must now register per-series sources, every one of which stays
// addressable (and renderable) after the sweep.
func TestSampledSweepRegistersPerSeriesWearPNG(t *testing.T) {
	opt := pim.Options{Lanes: 8, Rows: 96, PresetOutputs: true, NANDBasis: true}
	bench, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	rc := pim.RunConfig{Iterations: 12, RecompileEvery: 4, Seed: 2, Workers: 4, SampleEvery: 1}
	results, err := pim.Sweep(bench, opt, rc, nil, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}
	registered := map[string]bool{}
	for _, name := range obs.WearPNGSources() {
		registered[name] = true
	}
	defer func() {
		for name := range registered {
			obs.RegisterWearPNG(name, nil)
		}
	}()
	for _, r := range results {
		name := "wear." + bench.Name + "." + r.Strategy.Name()
		if !registered[name] {
			t.Errorf("no wear-PNG source registered for %s", name)
			continue
		}
		var buf bytes.Buffer
		if err := obs.WriteWearPNG(&buf, name); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if buf.Len() < 8 || string(buf.Bytes()[1:4]) != "PNG" {
			t.Errorf("%s: source did not render a PNG", name)
		}
		if r.Wear == nil || r.Wear.Len() == 0 {
			t.Errorf("%s: no wear series recorded", r.Strategy.Name())
		}
	}
}
