// The serving layer's WearPlan cache. A core.WearPlan is immutable and
// shared-read-only after construction — exactly a cache entry — and it
// depends only on (trace content, rows, preset): two requests that
// compile the same benchmark at the same geometry can share one plan no
// matter when they arrive. PlanCache keys plans by a content
// fingerprint of the compiled trace, so a sweep server answering
// repeated or similar requests skips the core.simulate/plan stage
// entirely and goes straight to the engines.
package pim

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sync"

	"pimendure/internal/core"
	"pimendure/internal/obs"
	"pimendure/internal/traceio"
)

// Fingerprint returns a stable content fingerprint of a compiled
// benchmark on a given array geometry — the PlanCache key. Two
// benchmarks with byte-identical compiled traces simulated at the same
// rows/preset produce the same fingerprint regardless of when or where
// they were compiled; anything that changes the trace (lanes, basis,
// allocator, precision, kernel) changes it.
func Fingerprint(b *Benchmark, opt Options) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "rows=%d;preset=%v;", opt.Rows, opt.PresetOutputs)
	// The versioned trace serialization covers every field the wear
	// engines consume (ops, masks, lanes, lane bits); writing to a hash
	// cannot fail.
	_ = traceio.WriteTrace(h, b.Trace)
	return fmt.Sprintf("%s:%016x", b.Name, h.Sum64())
}

// PlanCache is a bounded LRU of immutable core.WearPlans keyed by
// Fingerprint. All methods are safe for concurrent use; the cached
// plans themselves are read-only, so any number of simulations may run
// against one entry while it sits in (or is evicted from) the cache.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element // value: *planEntry
	order    *list.List               // front = most recently used
}

type planEntry struct {
	key  string
	plan *core.WearPlan
}

// NewPlanCache creates a cache holding at most capacity plans; the
// least recently used entry is evicted beyond that. A capacity ≤ 0
// disables caching entirely (every lookup misses, nothing is stored) —
// the cold-path baseline a serving benchmark compares against.
func NewPlanCache(capacity int) *PlanCache {
	return &PlanCache{
		capacity: capacity,
		entries:  map[string]*list.Element{},
		order:    list.New(),
	}
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// lookup returns the cached plan for key, refreshing its recency.
func (c *PlanCache) lookup(key string) (*core.WearPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*planEntry).plan, true
}

// store inserts a plan under key, evicting the least recently used
// entry past capacity. Concurrent builders of the same key keep the
// first stored plan (the plans are interchangeable by construction).
func (c *PlanCache) store(key string, plan *core.WearPlan) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	c.entries[key] = c.order.PushFront(&planEntry{key: key, plan: plan})
	for len(c.entries) > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*planEntry).key)
	}
}

// Plan returns the cached WearPlan for the benchmark at this geometry,
// building and caching it on a miss. The second return reports whether
// the plan came from the cache.
func (c *PlanCache) Plan(b *Benchmark, opt Options) (*core.WearPlan, bool) {
	key := Fingerprint(b, opt)
	if plan, ok := c.lookup(key); ok {
		return plan, true
	}
	plan := core.NewWearPlan(b.Trace, opt.Rows, opt.PresetOutputs)
	c.store(key, plan)
	return plan, false
}

// Sweep is the cache-aware Sweep entry point: identical to Sweep except
// the per-benchmark WearPlan is reused across calls when the benchmark
// fingerprint matches. The hit return reports whether the plan came
// from the cache; results are bit-identical either way (the plan is a
// pure function of the fingerprint).
func (c *PlanCache) Sweep(b *Benchmark, opt Options, rc RunConfig, strategies []Strategy, tech Technology) (results []*Result, hit bool, err error) {
	sp := obs.StartSpan("pim.sweep")
	defer sp.End()
	obsSweeps.Add(1)
	plan, hit := c.Plan(b, opt)
	results, err = sweepPlanned(plan, b, rc, strategies, tech)
	return results, hit, err
}

// Run is the cache-aware Run entry point: one strategy against a
// cached (or freshly cached) plan, with the same hit semantics as
// PlanCache.Sweep.
func (c *PlanCache) Run(b *Benchmark, opt Options, rc RunConfig, s Strategy, tech Technology) (*Result, bool, error) {
	plan, hit := c.Plan(b, opt)
	res, err := runPlanned(plan, b, rc, s, tech)
	return res, hit, err
}
