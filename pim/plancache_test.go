package pim_test

import (
	"testing"

	"pimendure/pim"
)

func cacheOptions() pim.Options {
	return pim.Options{Lanes: 16, Rows: 512, PresetOutputs: true, NANDBasis: true}
}

// The fingerprint is a pure function of the compiled trace content and
// geometry: recompiling the same benchmark matches, changing precision,
// lanes or rows does not.
func TestFingerprint(t *testing.T) {
	opt := cacheOptions()
	a, err := pim.NewParallelMult(opt, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pim.NewParallelMult(opt, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pim.Fingerprint(a, opt) != pim.Fingerprint(b, opt) {
		t.Error("identical compilations fingerprint differently")
	}
	wider, err := pim.NewParallelMult(opt, 16)
	if err != nil {
		t.Fatal(err)
	}
	if pim.Fingerprint(a, opt) == pim.Fingerprint(wider, opt) {
		t.Error("different precisions share a fingerprint")
	}
	deeper := opt
	deeper.Rows = 1024
	if pim.Fingerprint(a, opt) == pim.Fingerprint(a, deeper) {
		t.Error("different row counts share a fingerprint")
	}
}

// A cached sweep must be bit-identical to a cold pim.Sweep: same
// distributions, same lifetimes, and the second (cache-hit) pass equals
// the first.
func TestPlanCacheSweepBitIdentical(t *testing.T) {
	opt := cacheOptions()
	bench, err := pim.NewParallelMult(opt, 8)
	if err != nil {
		t.Fatal(err)
	}
	rc := pim.RunConfig{Iterations: 300, RecompileEvery: 50, Seed: 7}
	cold, err := pim.Sweep(bench, opt, rc, nil, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}

	cache := pim.NewPlanCache(4)
	first, hit, err := cache.Sweep(bench, opt, rc, nil, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first cache.Sweep reported a hit on an empty cache")
	}
	// A recompiled benchmark (fresh trace pointer, same content) must
	// hit the cached plan.
	recompiled, err := pim.NewParallelMult(opt, 8)
	if err != nil {
		t.Fatal(err)
	}
	second, hit, err := cache.Sweep(recompiled, opt, rc, nil, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("identical benchmark missed the plan cache")
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d plans, want 1", cache.Len())
	}
	for i := range cold {
		for _, got := range [][]*pim.Result{first, second} {
			if !got[i].Dist.Equal(cold[i].Dist) {
				t.Fatalf("%s: cached sweep distribution differs from cold Sweep", cold[i].Strategy.Name())
			}
			if got[i].MaxWritesPerIteration != cold[i].MaxWritesPerIteration ||
				got[i].Lifetime != cold[i].Lifetime {
				t.Fatalf("%s: cached sweep summary differs from cold Sweep", cold[i].Strategy.Name())
			}
		}
	}
}

// LRU semantics: capacity bounds the cache and the least recently used
// plan is the one evicted; a zero capacity disables caching.
func TestPlanCacheEviction(t *testing.T) {
	opt := cacheOptions()
	var benches []*pim.Benchmark
	for _, bits := range []int{4, 6, 8} {
		b, err := pim.NewParallelMult(opt, bits)
		if err != nil {
			t.Fatal(err)
		}
		benches = append(benches, b)
	}
	cache := pim.NewPlanCache(2)
	touch := func(b *pim.Benchmark) bool {
		_, hit := cache.Plan(b, opt)
		return hit
	}
	touch(benches[0])
	touch(benches[1])
	touch(benches[0])    // refresh 0: LRU order now 1, 0
	touch(benches[2])    // evicts 1
	if !touch(benches[0]) {
		t.Error("recently used plan was evicted")
	}
	if touch(benches[1]) {
		t.Error("least recently used plan survived past capacity")
	}
	if cache.Len() != 2 {
		t.Errorf("cache holds %d plans, want 2", cache.Len())
	}

	off := pim.NewPlanCache(0)
	if _, hit := off.Plan(benches[0], opt); hit {
		t.Error("zero-capacity cache reported a hit")
	}
	if _, hit := off.Plan(benches[0], opt); hit || off.Len() != 0 {
		t.Error("zero-capacity cache stored a plan")
	}
}
