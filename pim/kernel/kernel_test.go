package kernel_test

import (
	"strings"
	"testing"

	"pimendure/pim"
	"pimendure/pim/kernel"
)

func opts() pim.Options {
	return pim.Options{Lanes: 8, Rows: 1024, PresetOutputs: true, NANDBasis: true}
}

func data(seed int64) func(slot, lane int) bool {
	return func(slot, lane int) bool {
		z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(slot)*0xBF58476D1CE4E5B9 + uint64(lane)*0x94D049BB133111EB
		z ^= z >> 29
		z *= 0xBF58476D1CE4E5B9
		return z>>17&1 == 1
	}
}

// verify compiles and functionally checks a kernel under both a static and
// a remapped configuration.
func verify(t *testing.T, name string, outs ...kernel.OutputNode) *pim.Benchmark {
	t.Helper()
	b, err := kernel.Compile(opts(), name, outs...)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	d := data(int64(len(name)))
	if err := pim.Verify(b, opts(), pim.StaticStrategy, d); err != nil {
		t.Fatalf("%s static: %v", name, err)
	}
	if err := pim.Verify(b, opts(), pim.Strategy{Within: pim.Random, Between: pim.ByteShift, Hw: true}, d); err != nil {
		t.Fatalf("%s remapped: %v", name, err)
	}
	return b
}

func TestMulAddMACKernel(t *testing.T) {
	a := kernel.Input(8)
	b := kernel.Input(8)
	c := kernel.Input(16)
	mac := kernel.Add(kernel.Mul(a, b), c)
	if mac.Bits() != 17 {
		t.Fatalf("mac width %d, want 17", mac.Bits())
	}
	verify(t, "mac8", kernel.Output(mac))
}

func TestBitwiseAndNotKernel(t *testing.T) {
	x := kernel.Input(12)
	y := kernel.Input(12)
	verify(t, "bitops",
		kernel.Output(kernel.And(x, y)),
		kernel.Output(kernel.Or(x, y)),
		kernel.Output(kernel.Xor(x, y)),
		kernel.Output(kernel.Not(x)))
}

func TestThresholdKernel(t *testing.T) {
	a := kernel.Input(6)
	b := kernel.Input(6)
	thr := kernel.Input(12)
	verify(t, "threshold", kernel.Output(kernel.GE(kernel.Mul(a, b), thr)))
}

// Shared subexpressions compile once: (a·b) feeding two outputs should
// synthesize a single multiplier.
func TestCommonSubexpressionSharing(t *testing.T) {
	a := kernel.Input(6)
	b := kernel.Input(6)
	prod := kernel.Mul(a, b)
	c := kernel.Input(12)
	shared := verify(t, "shared",
		kernel.Output(kernel.And(prod, c)),
		kernel.Output(kernel.Xor(prod, c)))

	a2 := kernel.Input(6)
	b2 := kernel.Input(6)
	c2 := kernel.Input(12)
	unshared := verify(t, "unshared",
		kernel.Output(kernel.And(kernel.Mul(a2, b2), c2)),
		kernel.Output(kernel.Xor(kernel.Mul(a2, b2), c2)))

	if len(shared.Trace.Ops) >= len(unshared.Trace.Ops) {
		t.Errorf("shared DAG (%d ops) should be smaller than duplicated one (%d ops)",
			len(shared.Trace.Ops), len(unshared.Trace.Ops))
	}
}

// A squaring kernel: the same node as both multiplier inputs.
func TestSquareKernel(t *testing.T) {
	a := kernel.Input(7)
	verify(t, "square", kernel.Output(kernel.Mul(a, a)))
}

// The compiled kernel runs through the full endurance pipeline.
func TestKernelEndToEndWear(t *testing.T) {
	a := kernel.Input(8)
	b := kernel.Input(8)
	bench, err := kernel.Compile(opts(), "wear-kernel", kernel.Output(kernel.Mul(a, b)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pim.Run(bench, opts(), pim.RunConfig{Iterations: 100, RecompileEvery: 20, Seed: 1},
		pim.Strategy{Within: pim.Random}, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}
	if res.Lifetime.Days() <= 0 {
		t.Error("no lifetime computed")
	}
	if res.Utilization != 1.0 {
		t.Errorf("utilization %v, want 1.0", res.Utilization)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := kernel.Compile(opts(), "empty"); err == nil {
		t.Error("no outputs accepted")
	}
	w := kernel.Input(4)
	n := kernel.Input(6)
	if _, err := kernel.Compile(opts(), "widths", kernel.Output(kernel.And(w, n))); err == nil ||
		!strings.Contains(err.Error(), "widths") {
		t.Errorf("width mismatch not caught: %v", err)
	}
	one := kernel.Input(1)
	if _, err := kernel.Compile(opts(), "mul1", kernel.Output(kernel.Mul(one, one))); err == nil {
		t.Error("1-bit mul accepted")
	}
	if _, err := kernel.Compile(opts(), "zero", kernel.Output(kernel.Input(0))); err == nil {
		t.Error("0-bit input accepted")
	}
	// Capacity exhaustion is an error, not a panic.
	tiny := opts()
	tiny.Rows = 16
	big1 := kernel.Input(16)
	big2 := kernel.Input(16)
	if _, err := kernel.Compile(tiny, "huge", kernel.Output(kernel.Mul(big1, big2))); err == nil {
		t.Error("oversized kernel accepted")
	}
}

// Optimizer and serialization compose with compiled kernels.
func TestKernelComposesWithToolchain(t *testing.T) {
	a := kernel.Input(6)
	b := kernel.Input(6)
	bench, err := kernel.Compile(opts(), "chain", kernel.Output(kernel.Add(a, b)))
	if err != nil {
		t.Fatal(err)
	}
	opted, _ := pim.Optimize(bench)
	if err := pim.Verify(opted, opts(), pim.StaticStrategy, data(7)); err != nil {
		t.Error(err)
	}
}
