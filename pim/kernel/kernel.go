// Package kernel compiles arithmetic expressions into PIM benchmarks. The
// paper's workloads are hand-scheduled kernels; this package generalizes
// them: describe a per-lane computation as an expression DAG over fresh
// operands, and Compile produces a trace (every lane evaluates the DAG on
// its own data, SIMD-style, §2.2's "application mapping" for
// embarrassingly parallel work) together with an automatically derived
// reference model, so the result plugs into pim.Run, pim.Verify and the
// whole endurance pipeline.
//
//	a := kernel.Input(8)
//	b := kernel.Input(8)
//	c := kernel.Input(16)
//	mac := kernel.Add(kernel.Mul(a, b), c) // a*b + c per lane
//	bench, err := kernel.Compile(opt, "mac8", kernel.Output(mac))
package kernel

import (
	"fmt"
	"math/big"

	"pimendure/internal/program"
	"pimendure/internal/synth"
	"pimendure/internal/workloads"
	"pimendure/pim"
)

// Op is an expression node kind.
type Op uint8

const (
	opInput Op = iota
	opMul
	opAdd
	opAnd
	opOr
	opXor
	opNot
	opGE
)

// String names the node kind for diagnostics ("input", "mul", ...).
func (o Op) String() string {
	return [...]string{"input", "mul", "add", "and", "or", "xor", "not", "ge"}[o]
}

// Node is one vertex of an expression DAG. Nodes are immutable once
// created and may be shared between expressions (common subexpressions
// compile once).
type Node struct {
	op   Op
	bits int
	args []*Node
}

// Bits returns the node's result width in bits.
func (n *Node) Bits() int { return n.bits }

// Input declares a fresh operand of the given width, loaded from external
// data every iteration.
func Input(bits int) *Node {
	return &Node{op: opInput, bits: bits}
}

// Mul multiplies two nodes (Dadda synthesis); the result has the summed
// width.
func Mul(a, b *Node) *Node {
	return &Node{op: opMul, bits: a.bits + b.bits, args: []*Node{a, b}}
}

// Add adds two nodes (ripple-carry); the result is one bit wider than the
// wider operand.
func Add(a, b *Node) *Node {
	w := a.bits
	if b.bits > w {
		w = b.bits
	}
	return &Node{op: opAdd, bits: w + 1, args: []*Node{a, b}}
}

// And applies a bitwise AND; operand widths must match.
func And(a, b *Node) *Node { return &Node{op: opAnd, bits: a.bits, args: []*Node{a, b}} }

// Or applies a bitwise OR; operand widths must match.
func Or(a, b *Node) *Node { return &Node{op: opOr, bits: a.bits, args: []*Node{a, b}} }

// Xor applies a bitwise XOR; operand widths must match.
func Xor(a, b *Node) *Node { return &Node{op: opXor, bits: a.bits, args: []*Node{a, b}} }

// Not inverts every bit.
func Not(a *Node) *Node { return &Node{op: opNot, bits: a.bits, args: []*Node{a}} }

// GE compares two equal-width nodes, producing a single bit that is 1 iff
// a ≥ b (the BNN threshold primitive).
func GE(a, b *Node) *Node { return &Node{op: opGE, bits: 1, args: []*Node{a, b}} }

// Output marks a node whose value is read out of the array each
// iteration.
type OutputNode struct{ n *Node }

// Output wraps a node for readout.
func Output(n *Node) OutputNode { return OutputNode{n: n} }

// Compile synthesizes the DAG into a pim.Benchmark: inputs become operand
// writes (slot order = first-use order across outputs), interior nodes
// become gate networks with workspace freed as consumers complete, and
// outputs become readouts. The benchmark's Check recomputes the DAG per
// lane with big-integer arithmetic.
func Compile(opt pim.Options, name string, outputs ...OutputNode) (*pim.Benchmark, error) {
	if len(outputs) == 0 {
		return nil, fmt.Errorf("kernel: no outputs")
	}
	cfg := optionsToConfig(opt)
	if err := validateDAG(outputs); err != nil {
		return nil, err
	}

	order, refs := schedule(outputs)

	bench, err := buildTrace(cfg, name, order, refs, outputs)
	if err != nil {
		return nil, err
	}
	return bench, nil
}

func optionsToConfig(opt pim.Options) workloads.Config {
	b := synth.Basis(synth.NAND)
	if !opt.NANDBasis {
		b = synth.Mixed2
	}
	alloc := program.NextFit
	if opt.LowestFirstAlloc {
		alloc = program.LowestFirst
	}
	return workloads.Config{Lanes: opt.Lanes, Rows: opt.Rows, Basis: b, Alloc: alloc}
}

// validateDAG checks widths and arities.
func validateDAG(outputs []OutputNode) error {
	seen := map[*Node]bool{}
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n == nil {
			return fmt.Errorf("kernel: nil node")
		}
		if seen[n] {
			return nil
		}
		seen[n] = true
		for _, a := range n.args {
			if err := walk(a); err != nil {
				return err
			}
		}
		switch n.op {
		case opInput:
			if n.bits < 1 {
				return fmt.Errorf("kernel: input width %d < 1", n.bits)
			}
		case opMul:
			if n.args[0].bits < 2 || n.args[1].bits < 2 {
				return fmt.Errorf("kernel: mul operands need ≥2 bits")
			}
		case opAnd, opOr, opXor, opGE:
			if n.args[0].bits != n.args[1].bits {
				return fmt.Errorf("kernel: %v operand widths %d and %d differ",
					n.op, n.args[0].bits, n.args[1].bits)
			}
		}
		return nil
	}
	for _, o := range outputs {
		if err := walk(o.n); err != nil {
			return err
		}
	}
	return nil
}

// schedule returns a topological order (post-order DFS, deduplicated) and
// the consumer count of each node (+1 per output mark).
func schedule(outputs []OutputNode) ([]*Node, map[*Node]int) {
	var order []*Node
	visited := map[*Node]bool{}
	refs := map[*Node]int{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if visited[n] {
			return
		}
		visited[n] = true
		for _, a := range n.args {
			walk(a)
		}
		for _, a := range n.args {
			refs[a]++
		}
		order = append(order, n)
	}
	for _, o := range outputs {
		walk(o.n)
		refs[o.n]++
	}
	return order, refs
}

func buildTrace(cfg workloads.Config, name string, order []*Node, refs map[*Node]int,
	outputs []OutputNode) (bench *pim.Benchmark, err error) {
	defer func() {
		if r := recover(); r != nil {
			bench, err = nil, fmt.Errorf("kernel: %v (increase Rows?)", r)
		}
	}()
	basis := cfg.Basis
	if basis == nil {
		basis = synth.NAND
	}
	bld := program.NewBuilder(cfg.Lanes, cfg.Rows-1)
	bld.SetAllocPolicy(cfg.Alloc)

	bits := map[*Node][]program.Bit{}
	inputSlot := map[*Node]int{}
	remaining := map[*Node]int{}
	for n, r := range refs {
		remaining[n] = r
	}

	release := func(n *Node) {
		remaining[n]--
		if remaining[n] == 0 {
			bld.Free(bits[n]...)
			bits[n] = nil
		}
	}

	for _, n := range order {
		switch n.op {
		case opInput:
			var slot int
			bits[n], slot = bld.WriteVector(n.bits)
			inputSlot[n] = slot
		case opMul:
			bits[n] = synth.Dadda(bld, basis, bits[n.args[0]], bits[n.args[1]])
		case opAdd:
			bits[n] = synth.AddUneven(bld, basis, bits[n.args[0]], bits[n.args[1]])
		case opAnd:
			bits[n] = bitwise(bld, basis, bits[n.args[0]], bits[n.args[1]], basisAnd)
		case opOr:
			bits[n] = bitwise(bld, basis, bits[n.args[0]], bits[n.args[1]], basisOr)
		case opXor:
			bits[n] = bitwise(bld, basis, bits[n.args[0]], bits[n.args[1]], basisXor)
		case opNot:
			a := bits[n.args[0]]
			out := make([]program.Bit, n.bits)
			for i := range out {
				out[i] = bld.Not(a[i])
			}
			bits[n] = out
		case opGE:
			bits[n] = []program.Bit{synth.GreaterEqual(bld, basis, bits[n.args[0]], bits[n.args[1]])}
		}
		for _, a := range n.args {
			release(a)
		}
	}

	outSlots := make([]int, len(outputs))
	for i, o := range outputs {
		outSlots[i] = bld.ReadVector(bits[o.n])
	}
	for _, o := range outputs {
		release(o.n)
	}

	tr := bld.Trace()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	lanes := cfg.Lanes
	outs := outputs
	return &pim.Benchmark{
		Name:        name,
		Description: fmt.Sprintf("kernel %q: %d inputs, %d nodes, %d outputs, %d lanes", name, len(inputSlot), len(order), len(outs), lanes),
		Trace:       tr,
		Check: func(data workloads.DataFunc, out workloads.OutFunc) error {
			for l := 0; l < lanes; l++ {
				vals := map[*Node]*big.Int{}
				for _, n := range order {
					vals[n] = evalNode(n, vals, data, inputSlot, l)
				}
				for i, o := range outs {
					want := vals[o.n]
					got := new(big.Int)
					for b := 0; b < o.n.bits; b++ {
						if out(outSlots[i]+b, l) {
							got.SetBit(got, b, 1)
						}
					}
					if got.Cmp(want) != 0 {
						return fmt.Errorf("kernel %q lane %d output %d: got %v, want %v",
							name, l, i, got, want)
					}
				}
			}
			return nil
		},
	}, nil
}

type gateFn func(b synth.Basis, bld *program.Builder, x, y program.Bit) program.Bit

func basisAnd(b synth.Basis, bld *program.Builder, x, y program.Bit) program.Bit {
	return b.And(bld, x, y)
}
func basisOr(b synth.Basis, bld *program.Builder, x, y program.Bit) program.Bit {
	return b.Or(bld, x, y)
}
func basisXor(b synth.Basis, bld *program.Builder, x, y program.Bit) program.Bit {
	return b.Xor(bld, x, y)
}

func bitwise(bld *program.Builder, basis synth.Basis, a, b []program.Bit, fn gateFn) []program.Bit {
	out := make([]program.Bit, len(a))
	for i := range out {
		out[i] = fn(basis, bld, a[i], b[i])
	}
	return out
}

// evalNode computes a node's reference value for one lane.
func evalNode(n *Node, vals map[*Node]*big.Int, data workloads.DataFunc, inputSlot map[*Node]int, lane int) *big.Int {
	mask := func(v *big.Int, bits int) *big.Int {
		m := new(big.Int).Lsh(big.NewInt(1), uint(bits))
		m.Sub(m, big.NewInt(1))
		return v.And(v, m)
	}
	switch n.op {
	case opInput:
		v := new(big.Int)
		for b := 0; b < n.bits; b++ {
			if data(inputSlot[n]+b, lane) {
				v.SetBit(v, b, 1)
			}
		}
		return v
	case opMul:
		return new(big.Int).Mul(vals[n.args[0]], vals[n.args[1]])
	case opAdd:
		return new(big.Int).Add(vals[n.args[0]], vals[n.args[1]])
	case opAnd:
		return new(big.Int).And(vals[n.args[0]], vals[n.args[1]])
	case opOr:
		return new(big.Int).Or(vals[n.args[0]], vals[n.args[1]])
	case opXor:
		return new(big.Int).Xor(vals[n.args[0]], vals[n.args[1]])
	case opNot:
		v := new(big.Int).Not(vals[n.args[0]])
		return mask(v, n.bits)
	case opGE:
		if vals[n.args[0]].Cmp(vals[n.args[1]]) >= 0 {
			return big.NewInt(1)
		}
		return big.NewInt(0)
	}
	panic(fmt.Sprintf("kernel: unknown op %v", n.op))
}
