// Multi-bank organizations: the public face of internal/system's bank
// scheduler. A real PIM substrate is a hierarchy of banks, each its own
// array; BankStripe stripes a benchmark's iterations across such an
// organization under a scheduling policy and reports per-bank wear and
// the system-level lifetime — the array-of-arrays extension of Run.
package pim

import (
	"pimendure/internal/core"
	"pimendure/internal/device"
	"pimendure/internal/obs"
	"pimendure/internal/system"
)

// Re-exported multi-bank building blocks.
type (
	// Organization is a bank hierarchy (channels × bank groups × banks).
	Organization = system.Organization
	// BankPolicy selects how iteration blocks stripe across banks.
	BankPolicy = system.Policy
	// BankConfig describes a multi-bank striping run.
	BankConfig = system.BankConfig
	// BankResult is one bank's outcome.
	BankResult = system.BankResult
	// StripeResult is the outcome of striping a workload across banks.
	StripeResult = system.StripeResult
)

// Bank scheduling policies.
const (
	// RoundRobinBanks stripes blocks across all banks obliviously.
	RoundRobinBanks = system.RoundRobin
	// WearAwareBanks routes each block to the least-worn bank.
	WearAwareBanks = system.WearAware
	// LocalityAwareBanks fills one bank group, spilling under pressure.
	LocalityAwareBanks = system.LocalityAware
)

// Bank policy and organization helpers.
var (
	// BankPolicies lists the scheduling policies in presentation order.
	BankPolicies = system.Policies
	// ParseBankPolicy converts a flag spelling to a BankPolicy.
	ParseBankPolicy = system.ParsePolicy
	// BankEndurances draws seeded per-bank endurance variation.
	BankEndurances = system.BankEndurances
	// DDR4Organization is the 16-bank DDR4-sized hierarchy.
	DDR4Organization = device.DDR4Organization
	// HBM3Organization is the 256-bank HBM3-sized hierarchy.
	HBM3Organization = device.HBM3Organization
	// SingleBank is the paper's one-array baseline organization.
	SingleBank = device.SingleBank
	// FlatOrganization is n banks with no group hierarchy.
	FlatOrganization = device.FlatOrganization
	// Organizations lists the named organization presets.
	Organizations = device.Organizations
)

// obsBankStripes counts BankStripe calls (no-op until obs is enabled).
var obsBankStripes = obs.GetCounter("pim.bank_stripes")

// BankStripe stripes the benchmark's rc.Iterations across a multi-bank
// organization under cfg.Policy and simulates every touched bank
// independently against one shared WearPlan. rc supplies the simulation
// parameters exactly as for Run (bank b runs with rc.Seed+b); when
// cfg.Endurance, cfg.SampleEvery or cfg.SeriesPrefix are unset they are
// filled from tech.Endurance, rc.SampleEvery and rc.SeriesPrefix. Every
// bank's distribution is bit-identical to a standalone Run of its
// assigned iteration count for any worker count.
func BankStripe(b *Benchmark, opt Options, rc RunConfig, s Strategy, tech Technology, cfg BankConfig) (*StripeResult, error) {
	return bankStripePlanned(core.NewWearPlan(b.Trace, opt.Rows, opt.PresetOutputs), rc, s, tech, cfg)
}

// BankStripe is PlanCache-backed BankStripe: the benchmark's WearPlan is
// fetched from (or built into) the cache, so repeated striping runs over
// the same benchmark — policy comparisons, bank-count sweeps — share one
// plan. hit reports whether the plan was already cached.
func (c *PlanCache) BankStripe(b *Benchmark, opt Options, rc RunConfig, s Strategy, tech Technology, cfg BankConfig) (res *StripeResult, hit bool, err error) {
	plan, hit := c.Plan(b, opt)
	res, err = bankStripePlanned(plan, rc, s, tech, cfg)
	return res, hit, err
}

// bankStripePlanned is BankStripe against a prebuilt (possibly cached)
// WearPlan.
func bankStripePlanned(plan *core.WearPlan, rc RunConfig, s Strategy, tech Technology, cfg BankConfig) (*StripeResult, error) {
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	sp := obs.StartSpan("pim.bankstripe")
	defer sp.End()
	obsBankStripes.Add(1)
	if cfg.Endurance <= 0 {
		cfg.Endurance = tech.Endurance
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = rc.SampleEvery
	}
	if cfg.SeriesPrefix == "" {
		cfg.SeriesPrefix = rc.SeriesPrefix
	}
	sim := core.SimConfig{
		Rows:           plan.Rows(),
		PresetOutputs:  plan.PresetOutputs(),
		Iterations:     rc.Iterations,
		RecompileEvery: rc.RecompileEvery,
		Seed:           rc.Seed,
		Workers:        rc.Workers,
	}
	return system.Stripe(plan, sim, s, cfg)
}
