package pim_test

import (
	"testing"

	"pimendure/pim"
)

// RunConfig.SampleEvery threads a wear sampler through the full 18-config
// sweep: every result carries a trajectory whose last sample reproduces
// the final distribution's hottest-cell count, and the distributions stay
// bit-identical to an unsampled sweep.
func TestSweepWearSeries(t *testing.T) {
	opt := pim.Options{Lanes: 8, Rows: 96, PresetOutputs: true, NANDBasis: true}
	b, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	rc := pim.RunConfig{Iterations: 23, RecompileEvery: 7, Seed: 42, Workers: 4}
	plain, err := pim.Sweep(b, opt, rc, nil, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}
	rc.SampleEvery = 2
	sampled, err := pim.Sweep(b, opt, rc, nil, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}
	if len(sampled) != 18 {
		t.Fatalf("sweep returned %d results, want 18", len(sampled))
	}
	for i, r := range sampled {
		if !r.Dist.Equal(plain[i].Dist) {
			t.Errorf("%s: sampled sweep distribution diverges from unsampled", r.Strategy.Name())
		}
		if r.Wear == nil || r.Wear.Len() == 0 {
			t.Fatalf("%s: no wear series recorded", r.Strategy.Name())
		}
		last := r.Wear.Last()
		var maxCol int
		for j, c := range r.Wear.Columns() {
			if c == "max_writes" {
				maxCol = j
			}
		}
		if got, want := last[maxCol], float64(r.Dist.Max()); got != want {
			t.Errorf("%s: last wear sample max_writes = %v, final dist max = %v",
				r.Strategy.Name(), got, want)
		}
	}
	// Without SampleEvery no series is attached.
	if plain[0].Wear != nil {
		t.Error("unsampled run attached a wear series")
	}
}
