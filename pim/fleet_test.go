package pim_test

import (
	"math"
	"reflect"
	"testing"

	"pimendure/internal/obs"
	"pimendure/pim"
)

func fleetOptions() pim.Options {
	return pim.Options{Lanes: 16, Rows: 512, PresetOutputs: true, NANDBasis: true}
}

func fleetBench(t *testing.T) *pim.Benchmark {
	t.Helper()
	b, err := pim.NewParallelMult(fleetOptions(), 8)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// A small but non-trivial study: point ordering, quantile ordering,
// Eq. 4 agreement, and the common-random-numbers property that a
// technology change only rescales every sample by its median ratio.
func TestFleetStudy(t *testing.T) {
	opt := fleetOptions()
	bench := fleetBench(t)
	rc := pim.RunConfig{Iterations: 300, RecompileEvery: 50, Seed: 7, Workers: 1}
	strategies := []pim.Strategy{
		pim.StaticStrategy,
		{Within: pim.Random, Between: pim.Random, Hw: true},
	}
	techs := []pim.Technology{pim.MRAM(), pim.RRAM()}
	fc := pim.FleetConfig{Devices: 20000, Sigmas: []float64{0.3, 0.6}, Seed: 11}
	points, err := pim.Fleet(bench, opt, rc, strategies, techs, fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(strategies)*len(techs)*len(fc.Sigmas) {
		t.Fatalf("got %d points, want %d", len(points), len(strategies)*len(techs)*len(fc.Sigmas))
	}
	i := 0
	for _, s := range strategies {
		for _, tech := range techs {
			for _, sigma := range fc.Sigmas {
				p := points[i]
				i++
				if p.Strategy != s || p.Technology.Name != tech.Name || p.Sigma != sigma {
					t.Fatalf("point %d out of order: %s/%s/σ=%v", i-1, p.Strategy.Name(), p.Technology.Name, p.Sigma)
				}
				if p.Devices != fc.Devices || p.Benchmark != bench.Name {
					t.Errorf("point %d population/benchmark mismatch", i-1)
				}
				if p.Groups <= 0 || p.Cells < p.Groups {
					t.Errorf("point %d implausible collapse: %d groups, %d cells", i-1, p.Groups, p.Cells)
				}
				// Default quantiles are B1 < B10 < B50, all positive.
				if len(p.Quantiles) != 3 {
					t.Fatalf("point %d: %d quantiles", i-1, len(p.Quantiles))
				}
				if !(p.Quantiles[0] > 0 && p.Quantiles[0] < p.Quantiles[1] && p.Quantiles[1] < p.Quantiles[2]) {
					t.Errorf("point %d B-lives disordered: %v", i-1, p.Quantiles)
				}
				if p.Seconds(1) != float64(p.StepsPerIteration)*tech.SwitchSeconds {
					t.Errorf("point %d Seconds conversion wrong", i-1)
				}
			}
		}
	}

	// Eq. 4 agreement: DeterministicIterations must equal the Run path's
	// Endurance / MaxWritesPerIteration for the same strategy.
	for si, s := range strategies {
		res, err := pim.Run(bench, opt, rc, s, techs[0])
		if err != nil {
			t.Fatal(err)
		}
		want := techs[0].Endurance / res.MaxWritesPerIteration
		got := points[si*len(techs)*len(fc.Sigmas)].DeterministicIterations
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("%s: deterministic %g, Eq.4 %g", s.Name(), got, want)
		}
	}

	// Common random numbers: with one seed per study, switching MRAM to
	// RRAM at fixed strategy × σ rescales every sample by the endurance
	// ratio, so the B-lives and mean scale exactly (to rounding).
	ratio := techs[0].Endurance / techs[1].Endurance
	perTech := len(fc.Sigmas)
	for si := range strategies {
		base := si * len(techs) * perTech
		for k := 0; k < perTech; k++ {
			a, b := points[base+k], points[base+perTech+k]
			if rel := math.Abs(a.MeanIterations/b.MeanIterations - ratio); rel > 1e-9*ratio {
				t.Errorf("mean did not rescale: %g vs %g", a.MeanIterations, b.MeanIterations)
			}
			for q := range a.Quantiles {
				if rel := math.Abs(a.Quantiles[q]/b.Quantiles[q] - ratio); rel > 1e-9*ratio {
					t.Errorf("B-life %d did not rescale: %g vs %g", q, a.Quantiles[q], b.Quantiles[q])
				}
			}
		}
	}
}

// The cache-aware entry point must be bit-identical to the cold path and
// report hits from the second call on.
func TestPlanCacheFleetBitIdentical(t *testing.T) {
	opt := fleetOptions()
	bench := fleetBench(t)
	rc := pim.RunConfig{Iterations: 200, RecompileEvery: 50, Seed: 3, Workers: 1}
	strategies := []pim.Strategy{pim.StaticStrategy}
	techs := []pim.Technology{pim.PCM()}
	fc := pim.FleetConfig{Devices: 10000, Seed: 5}

	cold, err := pim.Fleet(bench, opt, rc, strategies, techs, fc)
	if err != nil {
		t.Fatal(err)
	}
	cache := pim.NewPlanCache(4)
	first, hit, err := cache.Fleet(bench, opt, rc, strategies, techs, fc)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first call reported a cache hit")
	}
	second, hit, err := cache.Fleet(bench, opt, rc, strategies, techs, fc)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second call missed the cache")
	}
	if !reflect.DeepEqual(cold, first) || !reflect.DeepEqual(first, second) {
		t.Error("cached fleet points differ from cold run")
	}
}

// Defaults: nil strategies → all 18, nil technologies → the paper's
// four, empty sigmas → {DefaultFleetSigma}.
func TestFleetDefaults(t *testing.T) {
	opt := fleetOptions()
	bench := fleetBench(t)
	rc := pim.RunConfig{Iterations: 60, RecompileEvery: 30, Seed: 1}
	points, err := pim.Fleet(bench, opt, rc, nil, nil, pim.FleetConfig{Devices: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if want := 18 * 4; len(points) != want {
		t.Fatalf("got %d points, want %d", len(points), want)
	}
	for _, p := range points {
		if p.Sigma != pim.DefaultFleetSigma {
			t.Fatalf("default sigma %v, want %v", p.Sigma, pim.DefaultFleetSigma)
		}
	}
}

func TestFleetValidation(t *testing.T) {
	opt := fleetOptions()
	bench := fleetBench(t)
	rc := pim.RunConfig{Iterations: 10, Seed: 1}
	if _, err := pim.Fleet(bench, opt, rc, nil, nil, pim.FleetConfig{}); err == nil {
		t.Error("zero devices accepted")
	}
	bad := pim.FleetConfig{Devices: 10, Sigmas: []float64{-0.1}}
	if _, err := pim.Fleet(bench, opt, rc, nil, nil, bad); err == nil {
		t.Error("negative sigma accepted")
	}
	deadTech := []pim.Technology{{Name: "broken"}}
	if _, err := pim.Fleet(bench, opt, rc, nil, deadTech, pim.FleetConfig{Devices: 10}); err == nil {
		t.Error("invalid technology accepted")
	}
}

// The progress series counts devices cumulatively across the whole
// study, ending at points × devices.
func TestFleetProgressSeries(t *testing.T) {
	opt := fleetOptions()
	bench := fleetBench(t)
	rc := pim.RunConfig{Iterations: 60, RecompileEvery: 30, Seed: 1, Workers: 1}
	series := obs.NewSeries("test.fleet.progress", "devices")
	defer obs.RemoveSeries(series.Name())
	fc := pim.FleetConfig{Devices: 20000, Sigmas: []float64{0, 0.3}, Seed: 2, Series: series}
	strategies := []pim.Strategy{pim.StaticStrategy}
	points, err := pim.Fleet(bench, opt, rc, strategies, []pim.Technology{pim.MRAM()}, fc)
	if err != nil {
		t.Fatal(err)
	}
	total := float64(len(points) * fc.Devices)
	last := series.Last()
	if last == nil || last[0] != total {
		t.Fatalf("final progress row %v, want %v", last, total)
	}
	// σ=0 reports one row; σ=0.3 one per 8192-device batch.
	if series.Len() < 4 {
		t.Errorf("only %d progress rows", series.Len())
	}
}
