// Package pim is the public API of pimendure, a from-scratch Go
// reproduction of "On Endurance of Processing in (Nonvolatile) Memory"
// (Resch et al., ISCA 2023).
//
// The library models digital processing-in-memory (PIM) on nonvolatile
// arrays at instruction-level accuracy: workload kernels compile into
// sequential gate traces, traces execute on a bit-accurate array simulator
// or on a fast wear-accounting engine, and accumulated per-cell write
// distributions feed the paper's lifetime model (Eq. 4) under 18
// load-balancing configurations (3 within-lane × 3 between-lane software
// strategies × hardware renaming on/off).
//
// Typical use:
//
//	opt := pim.DefaultOptions()               // 1024×1024, NAND basis, presets on
//	bench, _ := pim.NewParallelMult(opt, 32)  // §4's first benchmark
//	res, _ := pim.Run(bench, opt, pim.RunConfig{Iterations: 10000, RecompileEvery: 100},
//	        pim.Strategy{Within: pim.Random, Between: pim.Static, Hw: true},
//	        pim.MRAM())
//	fmt.Println(res.Lifetime.Days(), "days")
package pim

import (
	"fmt"
	"io"
	"sort"

	"pimendure/internal/array"
	"pimendure/internal/baseline"
	"pimendure/internal/core"
	"pimendure/internal/device"
	"pimendure/internal/energy"
	"pimendure/internal/faults"
	"pimendure/internal/lifetime"
	"pimendure/internal/mapping"
	"pimendure/internal/obs"
	"pimendure/internal/opt"
	"pimendure/internal/pool"
	"pimendure/internal/program"
	"pimendure/internal/render"
	"pimendure/internal/stats"
	"pimendure/internal/synth"
	"pimendure/internal/system"
	"pimendure/internal/traceio"
	"pimendure/internal/workloads"
)

// Re-exported building blocks. The aliases keep one canonical definition in
// the internal packages while making the types part of the public API.
type (
	// Benchmark is a compiled workload with its functional reference model.
	Benchmark = workloads.Benchmark
	// Strategy is one load-balancing configuration (within×between[+Hw]).
	Strategy = core.StrategyConfig
	// WriteDist is an accumulated per-cell write distribution.
	WriteDist = core.WriteDist
	// Technology is an NVM device model (endurance + switching time).
	Technology = device.Technology
	// Lifetime is an Eq. 4 lifetime estimate.
	Lifetime = lifetime.Result
	// Grid is a dense matrix for heatmaps.
	Grid = stats.Grid
	// FaultCurvePoint samples Fig. 11b's usable-vs-failed curve.
	FaultCurvePoint = faults.CurvePoint
	// EnergyModel carries per-cell access energies.
	EnergyModel = energy.Model
	// EnergyBreakdown splits a trace's energy by access type.
	EnergyBreakdown = energy.Breakdown
	// VarLifetime is a Monte Carlo first-failure estimate under per-cell
	// endurance variability.
	VarLifetime = lifetime.VarResult
	// ChipConfig describes a multi-array accelerator.
	ChipConfig = system.Config
	// ChipEstimate is a chip-level replacement-time distribution.
	ChipEstimate = system.Estimate
	// WearSeries is a per-epoch wear telemetry trajectory (columns
	// epoch, iterations, max/mean/p99 writes, CoV, projected dead cells
	// and projected iterations to failure) recorded when
	// RunConfig.SampleEvery is set. The series also registers with the
	// observability layer, so CLIs export it as series_<name>.{csv,json}
	// and serve it live on -serve's /series endpoint.
	WearSeries = obs.Series
)

// Device energy models (orders of magnitude from the PIM literature).
var (
	MRAMEnergy   = energy.MRAM
	RRAMEnergy   = energy.RRAM
	PCMEnergy    = energy.PCM
	EnergyModels = energy.Models
)

// Observability handles (no-ops until internal/obs is enabled; CLIs do
// this via their -metrics/-pprof lifecycle).
var (
	obsRuns   = obs.GetCounter("pim.runs")
	obsSweeps = obs.GetCounter("pim.sweeps")
)

// Software re-mapping strategies (§3.2).
const (
	Static    = mapping.Static
	Random    = mapping.Random
	ByteShift = mapping.ByteShift
)

// Device models from the paper's §2.1 survey.
var (
	MRAM          = device.MRAM
	RRAM          = device.RRAM
	PCM           = device.PCM
	ProjectedMRAM = device.ProjectedMRAM
	Technologies  = device.Technologies
)

// AllStrategies enumerates the paper's 18 configurations; StaticStrategy is
// the St×St baseline.
var (
	AllStrategies  = core.AllConfigs
	StaticStrategy = core.Static
)

// Options sizes the simulated PIM array and selects the gate basis.
type Options struct {
	// Lanes × Rows is the array size (the paper evaluates 1024×1024).
	Lanes, Rows int
	// PresetOutputs charges the CRAM-style output preset write before
	// every gate (§4 accounts for it; Pinatubo-style sense-amp designs
	// don't need it).
	PresetOutputs bool
	// NANDBasis selects the paper's NAND decomposition (true, default)
	// or the minimum two-input Mixed2 basis (false).
	NANDBasis bool
	// LowestFirstAlloc switches workspace reuse to the adversarial
	// lowest-address-first allocator (ablation; the default rotating
	// next-fit allocator matches the paper's simulator).
	LowestFirstAlloc bool
}

// DefaultOptions returns the paper's evaluation setup: a 1024×1024
// column-parallel array with output presetting, NAND basis.
func DefaultOptions() Options {
	return Options{Lanes: 1024, Rows: 1024, PresetOutputs: true, NANDBasis: true}
}

func (o Options) workloadConfig() workloads.Config {
	b := synth.Basis(synth.NAND)
	if !o.NANDBasis {
		b = synth.Mixed2
	}
	alloc := program.NextFit
	if o.LowestFirstAlloc {
		alloc = program.LowestFirst
	}
	return workloads.Config{Lanes: o.Lanes, Rows: o.Rows, Basis: b, Alloc: alloc}
}

// NewParallelMult compiles the embarrassingly parallel multiplication
// benchmark (§4) at the given operand precision.
func NewParallelMult(opt Options, bits int) (*Benchmark, error) {
	return workloads.ParallelMult(opt.workloadConfig(), bits)
}

// NewDotProduct compiles the n-element dot-product benchmark (§4).
func NewDotProduct(opt Options, n, bits int) (*Benchmark, error) {
	return workloads.DotProduct(opt.workloadConfig(), n, bits)
}

// NewConvolution compiles the convolution benchmark; groupLanes lanes
// cooperate per filter position, each performing multsPerLane sequential
// multiplications (§4 uses 4×3 at 8 bits).
func NewConvolution(opt Options, groupLanes, multsPerLane, bits int) (*Benchmark, error) {
	return workloads.Convolution(opt.workloadConfig(),
		workloads.ConvConfig{GroupLanes: groupLanes, MultsPerLane: multsPerLane, Bits: bits})
}

// NewVectorAdd compiles the parallel-addition extension benchmark.
func NewVectorAdd(opt Options, bits int) (*Benchmark, error) {
	return workloads.VectorAdd(opt.workloadConfig(), bits)
}

// NewBNNLayer compiles the binarized-neural-network extension benchmark:
// one n-synapse XNOR-popcount-threshold neuron per lane.
func NewBNNLayer(opt Options, synapses int) (*Benchmark, error) {
	return workloads.BNNLayer(opt.workloadConfig(), synapses)
}

// PaperBenchmarks compiles the paper's three kernels at their §4
// parameters.
func PaperBenchmarks(opt Options) ([]*Benchmark, error) {
	return workloads.PaperSuite(opt.workloadConfig())
}

// RunConfig controls an endurance simulation.
type RunConfig struct {
	// Iterations is how many times the kernel repeats (§4: 100 000).
	Iterations int
	// RecompileEvery is the software re-mapping period (§4's headline
	// figures: 100); ≤ 0 disables re-mapping.
	RecompileEvery int
	// Seed drives the random-shuffle permutation sequence.
	Seed int64
	// Workers bounds the goroutines used by Sweep (across strategies)
	// and by the +Hw wear engine (across recompile epochs); ≤ 0 selects
	// runtime.GOMAXPROCS(0). Results are bit-identical for every worker
	// count.
	Workers int
	// SampleEvery, when > 0, records wear telemetry every SampleEvery
	// recompile epochs (plus always the final epoch) into
	// Result.Wear — live per-epoch max/mean/p99/CoV and lifetime
	// projections. Sampling switches the +Hw path to the epoch-ordered
	// sampled engine; the final distribution stays bit-identical.
	SampleEvery int
	// SeriesPrefix scopes the wear-telemetry names a sampled run
	// registers ("<prefix>wear.<benchmark>.<strategy>"): a serving layer
	// sets a per-job prefix so concurrent requests' series and /wear.png
	// sources are discoverable — and removable — as a group. Telemetry
	// names have no effect on simulation results.
	SeriesPrefix string
}

// Result is the outcome of one endurance run.
type Result struct {
	Benchmark string
	Strategy  Strategy
	// Dist is the accumulated write distribution.
	Dist *WriteDist
	// MaxWritesPerIteration is Eq. 4's max(WriteCount) normalized per
	// iteration.
	MaxWritesPerIteration float64
	// Utilization is the time-weighted fraction of active lanes
	// (Table 3).
	Utilization float64
	// Lifetime is the Eq. 4 estimate for the run's technology.
	Lifetime Lifetime
	// Imbalance is max/mean over cells that the benchmark can touch.
	Imbalance float64
	// Wear is the per-epoch telemetry trajectory, recorded when
	// RunConfig.SampleEvery > 0 (nil otherwise).
	Wear *WearSeries
}

// Run simulates the benchmark under one strategy and estimates lifetime on
// the given technology. It builds the per-benchmark simulation plan on
// demand; Sweep builds one plan and shares it across all strategies.
func Run(b *Benchmark, opt Options, rc RunConfig, s Strategy, tech Technology) (*Result, error) {
	return runPlanned(core.NewWearPlan(b.Trace, opt.Rows, opt.PresetOutputs), b, rc, s, tech)
}

// runPlanned is Run against a prebuilt WearPlan — the shared inner body
// of Run and Sweep.
func runPlanned(plan *core.WearPlan, b *Benchmark, rc RunConfig, s Strategy, tech Technology) (*Result, error) {
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	sp := obs.StartSpan("pim.run")
	defer sp.End()
	obsRuns.Add(1)
	sim := core.SimConfig{
		Rows:           plan.Rows(),
		PresetOutputs:  plan.PresetOutputs(),
		Iterations:     rc.Iterations,
		RecompileEvery: rc.RecompileEvery,
		Seed:           rc.Seed,
		Workers:        rc.Workers,
	}
	var sampler *core.WearSampler
	if rc.SampleEvery > 0 {
		name := rc.SeriesPrefix + "wear." + b.Name + "." + s.Name()
		sampler = core.NewWearSampler(name, rc.SampleEvery, tech.Endurance)
		sim.Sampler = sampler
		// Per-series registration: concurrent sampled runs in a sweep each
		// get their own /wear.png?name= source instead of racing over one
		// global hook. The sampler's series may have been renamed with a
		// uniquifying suffix on collision, so register under the name the
		// registry actually assigned.
		obs.RegisterWearPNG(sampler.Series().Name(), sampler.WritePNG)
	}
	dist, err := plan.Simulate(sim, s)
	if err != nil {
		return nil, err
	}
	st := plan.Stats()
	// One fused pass over the distribution supplies both the lifetime
	// model's max-per-iteration and the imbalance factor (the separate
	// MaxPerIteration + MaxOverMean calls each rescanned the counts).
	sum := stats.Summarize(dist.Counts)
	maxPerIter := 0.0
	if dist.Iterations > 0 {
		maxPerIter = float64(sum.Max) / float64(dist.Iterations)
	}
	model := lifetime.Model{Endurance: tech.Endurance, StepSeconds: tech.SwitchSeconds}
	lt, err := model.Estimate(maxPerIter, st.Steps)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Benchmark:             b.Name,
		Strategy:              s,
		Dist:                  dist,
		MaxWritesPerIteration: maxPerIter,
		Utilization:           st.Utilization,
		Lifetime:              lt,
		Imbalance:             sum.MaxOverMean(),
	}
	if sampler != nil {
		res.Wear = sampler.Series()
	}
	return res, nil
}

// Sweep runs the benchmark under every given strategy and returns
// results in the input order. A nil strategy list means all 18.
//
// Strategies are sharded over a bounded pool of rc.Workers goroutines
// (≤ 0 selects GOMAXPROCS) instead of one goroutine per strategy: the
// paper-scale sweep (18 strategies × 1024×1024 arrays) would otherwise
// oversubscribe the CPU and hold 18 histogram sets live at once. The
// worker budget is shared with the inner engines, so the total goroutine
// count stays near rc.Workers regardless of nesting.
//
// The per-benchmark WearPlan (flattened ops, factorized write matrix,
// renamer-cycle analysis, trace statistics) is built once and shared by
// every strategy — the plan is immutable after construction, so the
// concurrent runs need no synchronization over it.
func Sweep(b *Benchmark, opt Options, rc RunConfig, strategies []Strategy, tech Technology) ([]*Result, error) {
	sp := obs.StartSpan("pim.sweep")
	defer sp.End()
	obsSweeps.Add(1)
	plan := core.NewWearPlan(b.Trace, opt.Rows, opt.PresetOutputs)
	return sweepPlanned(plan, b, rc, strategies, tech)
}

// sweepPlanned is Sweep against a prebuilt (possibly cached) WearPlan —
// the shared inner body of Sweep and PlanCache.Sweep.
func sweepPlanned(plan *core.WearPlan, b *Benchmark, rc RunConfig, strategies []Strategy, tech Technology) ([]*Result, error) {
	if strategies == nil {
		strategies = AllStrategies()
	}
	results := make([]*Result, len(strategies))
	errs := make([]error, len(strategies))
	workers := pool.Size(rc.Workers, len(strategies))
	inner := rc
	inner.Workers = pool.Share(rc.Workers, workers)
	pool.ForEach(workers, len(strategies), func(i int) {
		results[i], errs[i] = runPlanned(plan, b, inner, strategies[i], tech)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Improvements converts sweep results into Fig. 17's lifetime-improvement
// factors relative to the St×St baseline (which must be present), sorted
// descending. When the input contains several St×St results — e.g.
// concatenated sweeps — the first occurrence is the baseline,
// deterministically, regardless of what follows.
func Improvements(results []*Result) ([]Improvement, error) {
	var base *Result
	for _, r := range results {
		if r.Strategy == StaticStrategy {
			base = r
			break
		}
	}
	if base == nil {
		return nil, fmt.Errorf("pim: sweep has no St×St baseline")
	}
	out := make([]Improvement, 0, len(results))
	for _, r := range results {
		out = append(out, Improvement{
			Strategy: r.Strategy,
			Factor:   lifetime.Improvement(base.MaxWritesPerIteration, r.MaxWritesPerIteration),
			Result:   r,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Factor > out[j].Factor })
	return out, nil
}

// Improvement pairs a strategy with its lifetime factor over St×St.
type Improvement struct {
	Strategy Strategy
	Factor   float64
	Result   *Result
}

// Heatmap converts a write distribution into a normalized grid,
// downsampled to at most maxDim cells on each axis — the rendering behind
// Figs. 14–16.
func Heatmap(d *WriteDist, maxDim int) (*Grid, error) {
	g, err := stats.FromCounts(d.Counts, d.Rows, d.Lanes)
	if err != nil {
		return nil, err
	}
	rows, cols := d.Rows, d.Lanes
	if maxDim > 0 {
		if rows > maxDim {
			rows = maxDim
		}
		if cols > maxDim {
			cols = maxDim
		}
		if g, err = g.Downsample(rows, cols); err != nil {
			return nil, err
		}
	}
	return g.Normalized(), nil
}

// WriteHeatmapPNG renders a normalized grid to PNG.
func WriteHeatmapPNG(w io.Writer, g *Grid, scale int) error {
	return render.HeatmapPNG(w, g, scale)
}

// WriteHeatmapPGM renders a normalized grid to plain PGM.
func WriteHeatmapPGM(w io.Writer, g *Grid) error {
	return render.HeatmapPGM(w, g)
}

// Verify executes one full iteration of the benchmark on the bit-accurate
// array simulator under the given strategy's epoch-0 layout and checks the
// results against the benchmark's reference model. data may be nil
// (all-zero operands).
func Verify(b *Benchmark, opt Options, s Strategy, data func(slot, lane int) bool) error {
	sim := core.SimConfig{Rows: opt.Rows, PresetOutputs: opt.PresetOutputs, Iterations: 1}
	var fn array.DataFunc
	if data != nil {
		fn = data
	}
	_, runner, err := core.BruteForce(b.Trace, sim, s, fn)
	if err != nil {
		return err
	}
	if data == nil {
		data = func(int, int) bool { return false }
	}
	return b.Check(data, runner.Out)
}

// SaveDist serializes a write distribution (versioned JSON).
func SaveDist(w io.Writer, d *WriteDist) error { return traceio.WriteDist(w, d) }

// LoadDist reads back a distribution written by SaveDist.
func LoadDist(r io.Reader) (*WriteDist, error) { return traceio.ReadDist(r) }

// SaveTrace serializes a benchmark's compiled trace (versioned JSON).
func SaveTrace(w io.Writer, b *Benchmark) error { return traceio.WriteTrace(w, b.Trace) }

// EnergyPerIteration prices one benchmark iteration on a device energy
// model (reads + writes, preset-inclusive when the options say so).
func EnergyPerIteration(b *Benchmark, opt Options, m energy.Model) (energy.Breakdown, error) {
	return energy.OfTrace(b.Trace, opt.PresetOutputs, m)
}

// LifetimeUnderVariability Monte-Carlo estimates first-failure iterations
// when per-cell endurance is lognormal around tech.Endurance with shape
// sigma — quantifying the §4 uniform-endurance caveat.
func LifetimeUnderVariability(res *Result, tech Technology, sigma float64, trials int, seed int64) (lifetime.VarResult, error) {
	m := lifetime.VarModel{MedianEndurance: tech.Endurance, Sigma: sigma, StepSeconds: tech.SwitchSeconds}
	return m.FirstFailure(res.Dist.Counts, res.Dist.Iterations, trials, seed)
}

// OptimizeStats reports what Optimize did.
type OptimizeStats = opt.Stats

// Optimize runs the trace optimizer (copy propagation + dead-gate
// elimination) over a benchmark, returning a functionally identical
// benchmark with fewer gates — fewer time steps and fewer cell writes
// (§2.2: fewest gates is optimal for PIM). The reference checker carries
// over unchanged because the external data slots are preserved.
func Optimize(b *Benchmark) (*Benchmark, OptimizeStats) {
	tr, st := opt.Optimize(b.Trace, opt.All())
	return &Benchmark{
		Name:        b.Name,
		Description: b.Description + " (optimized)",
		Trace:       tr,
		Check:       b.Check,
	}, st
}

// ChipLifetime lifts a single-array lifetime to a whole accelerator
// (§4's replacement scenario): Monte Carlo over lognormal array-to-array
// variation, spare arrays, and duty cycle.
func ChipLifetime(arrayLife Lifetime, cfg ChipConfig, trials int, seed int64) (ChipEstimate, error) {
	return system.ChipLifetime(arrayLife.Seconds, cfg, trials, seed)
}

// UpperBoundOps is Eq. 1: operations an array sustains under perfect
// balancing.
func UpperBoundOps(rows, lanes int, tech Technology, writesPerOp float64) float64 {
	return lifetime.UpperBoundOps(rows, lanes, tech.Endurance, writesPerOp)
}

// UpperBoundSeconds is Eq. 2: seconds to total break-down at full
// utilization.
func UpperBoundSeconds(rows, lanes int, tech Technology) float64 {
	return lifetime.UpperBoundSeconds(rows, lanes, tech.Endurance, tech.SwitchSeconds)
}

// WriteAmplification is §3.1's PIM-vs-conventional write ratio for a b-bit
// multiply (153.5× at 32 bits in the NAND basis).
func WriteAmplification(opt Options, bits int) float64 {
	b := synth.Basis(synth.NAND)
	if !opt.NANDBasis {
		b = synth.Mixed2
	}
	return baseline.WriteAmplification(b, bits)
}

// UsableFraction is Fig. 11b's closed form: expected usable fraction of
// each lane when failedFrac of the array's cells have failed.
func UsableFraction(lanes int, failedFrac float64) float64 {
	return faults.UsableFractionExpected(lanes, failedFrac)
}

// FaultCurve samples Fig. 11b by Monte Carlo alongside the closed form.
func FaultCurve(rows, lanes int, failedFracs []float64, trials int, seed int64) ([]FaultCurvePoint, error) {
	return faults.UsableCurve(rows, lanes, failedFracs, trials, seed)
}
