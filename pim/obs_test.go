package pim_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pimendure/internal/obs"
	"pimendure/internal/serve"
	"pimendure/pim"
)

// The run manifest must report exactly what the API returned: with the
// observability layer enabled, the core.writes counter accumulated over
// an 18-configuration sweep equals the sum of the returned WriteDist
// totals, the epoch counters are self-consistent with the run
// parameters, and the stage timings cover one core.simulate per
// strategy. (Not parallel: the obs registry is process-wide.)
func TestManifestMatchesSweepResults(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()

	opt := pim.Options{Lanes: 8, Rows: 96, PresetOutputs: true, NANDBasis: true}
	bench, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	rc := pim.RunConfig{Iterations: 23, RecompileEvery: 7, Seed: 3, Workers: 2}
	results, err := pim.Sweep(bench, opt, rc, nil, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}

	m := obs.NewManifest("sweeptest")
	m.Seed = rc.Seed
	m.Finish()

	var total uint64
	for _, r := range results {
		total += r.Dist.Total()
	}
	if got := m.Counters["core.writes"]; got != int64(total) {
		t.Errorf("manifest core.writes = %d, sum of WriteDist totals = %d", got, total)
	}

	// 23 iterations at recompile-every-7 is 4 epochs per strategy, 18
	// strategies; the 9 +Hw runs replay at most (and with these uneven
	// epochs, exactly) what memoization could not collapse.
	if got := m.Counters["core.epochs"]; got != 18*4 {
		t.Errorf("manifest core.epochs = %d, want %d", got, 18*4)
	}
	if m.Counters["core.hw.replays"]+m.Counters["core.hw.memo_hits"] != 9*4 {
		t.Errorf("hw replays (%d) + memo hits (%d) != hw epochs %d",
			m.Counters["core.hw.replays"], m.Counters["core.hw.memo_hits"], 9*4)
	}

	// Closed-cycle replay accounting: every +Hw epoch-iteration is either
	// replayed op-by-op (one recording pass per unique job) or saved by
	// memoization + closed-form accumulation. 9 +Hw strategies at 23
	// iterations each is 207 epoch-iterations, exactly.
	iters, saved := m.Counters["core.hw.replay_iters"], m.Counters["core.hw.replay_iters_saved"]
	if iters+saved != 9*23 {
		t.Errorf("replay_iters (%d) + replay_iters_saved (%d) != total +Hw epoch-iterations %d",
			iters, saved, 9*23)
	}
	if iters <= 0 || saved <= 0 {
		t.Errorf("replay accounting degenerate: replay_iters=%d replay_iters_saved=%d", iters, saved)
	}
	// The analytic renamer period is recorded once per +Hw simulation and
	// is at least 1, so over 9 strategies the accumulated cycle_len is ≥ 9.
	if got := m.Counters["core.hw.cycle_len"]; got < 9 {
		t.Errorf("manifest core.hw.cycle_len = %d, want ≥ 9 (one period ≥ 1 per +Hw strategy)", got)
	}

	// Software-engine memoization accounting: the 9 software strategies at
	// 4 epochs each group into at most one accumulation per epoch, and
	// groups + memo hits must balance exactly. St×St collapses to one
	// group, and so does St×Bs here (8 lanes at the default byte step make
	// every between rotation the identity), so at least 6 epochs fold.
	swGroups, swHits := m.Counters["core.sw.groups"], m.Counters["core.sw.memo_hits"]
	if swGroups+swHits != 9*4 {
		t.Errorf("sw groups (%d) + memo hits (%d) != software epochs %d", swGroups, swHits, 9*4)
	}
	if swHits < 6 {
		t.Errorf("sw memo hits = %d, want ≥ 6 (St×St and St×Bs fully collapse)", swHits)
	}

	stages := map[string]obs.Stage{}
	for _, st := range m.Stages {
		stages[st.Name] = st
	}
	// One shared WearPlan serves the whole sweep: the plan-build stage
	// must have run exactly once for 18 core.simulate stages.
	if st := stages["core.simulate/plan"]; st.Count != 1 {
		t.Errorf("core.simulate/plan stage count = %d, want 1 (plan shared across the sweep)", st.Count)
	}
	if st := stages["core.simulate"]; st.Count != 18 {
		t.Errorf("core.simulate stage count = %d, want 18", st.Count)
	}
	if st := stages["pim.sweep"]; st.Count != 1 {
		t.Errorf("pim.sweep stage count = %d, want 1", st.Count)
	}
	if st := stages["pim.run"]; st.Count != 18 {
		t.Errorf("pim.run stage count = %d, want 18", st.Count)
	}
	if m.Counters["pim.runs"] != 18 || m.Counters["pim.sweeps"] != 1 {
		t.Errorf("pim counters wrong: runs=%d sweeps=%d",
			m.Counters["pim.runs"], m.Counters["pim.sweeps"])
	}
}

// Serving-path telemetry must balance: after a batch of jobs runs
// through a serve.Server, the serve.job latency histogram holds exactly
// one observation per terminal job, i.e. its _count equals
// serve.jobs_completed + serve.jobs_failed — the cross-layer invariant
// that ties the distribution-level telemetry to the counters the
// serving layer has always exported. (Not parallel: the obs registry is
// process-wide.)
func TestServeHistogramBalancesJobCounters(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()

	srv := serve.New(serve.Config{Workers: 2, QueueDepth: 16})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	poll := func(id string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := ts.Client().Get(ts.URL + "/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var st struct {
				State string `json:"state"`
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if st.State == "done" || st.State == "failed" || st.State == "canceled" {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("job %s did not finish", id)
	}
	for seed := 0; seed < 5; seed++ {
		body, _ := json.Marshal(map[string]any{
			"benchmark": "mult", "bits": 4, "lanes": 16, "rows": 256,
			"iterations": 40, "recompile_every": 20, "seed": seed,
			"strategies": []string{"StxSt"},
		})
		resp, err := ts.Client().Post(ts.URL+"/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Job string `json:"job"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d err %v", resp.StatusCode, err)
		}
		poll(out.Job)
	}

	// The histogram observation and counter bumps land just after the
	// terminal state becomes pollable; allow them a moment to settle.
	terminal := func() int64 {
		return obs.GetCounter("serve.jobs_completed").Value() + obs.GetCounter("serve.jobs_failed").Value()
	}
	deadline := time.Now().Add(2 * time.Second)
	for (terminal() != 5 || obs.GetDurationHistogram("serve.job").Count() != 5) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := terminal(); got != 5 {
		t.Fatalf("jobs_completed + jobs_failed = %d, want 5", got)
	}
	for _, name := range []string{"serve.job", "serve.queue_wait", "serve.compute"} {
		if got := obs.GetDurationHistogram(name).Count(); got != 5 {
			t.Errorf("%s histogram count = %d, want 5 (one per terminal job)", name, got)
		}
	}
}

// Re-running the same sweep with the layer disabled must leave every
// counter untouched — the disabled path is the one benchmarks take.
func TestSweepRecordsNothingWhenDisabled(t *testing.T) {
	obs.Reset()
	obs.Disable()

	opt := pim.Options{Lanes: 8, Rows: 96, PresetOutputs: true, NANDBasis: true}
	bench, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	rc := pim.RunConfig{Iterations: 10, RecompileEvery: 5, Seed: 1}
	if _, err := pim.Sweep(bench, opt, rc, nil, pim.MRAM()); err != nil {
		t.Fatal(err)
	}
	s := obs.Capture()
	if len(s.Counters) != 0 || len(s.Stages) != 0 {
		t.Errorf("disabled sweep recorded: %+v", s)
	}
}
