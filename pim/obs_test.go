package pim_test

import (
	"testing"

	"pimendure/internal/obs"
	"pimendure/pim"
)

// The run manifest must report exactly what the API returned: with the
// observability layer enabled, the core.writes counter accumulated over
// an 18-configuration sweep equals the sum of the returned WriteDist
// totals, the epoch counters are self-consistent with the run
// parameters, and the stage timings cover one core.simulate per
// strategy. (Not parallel: the obs registry is process-wide.)
func TestManifestMatchesSweepResults(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()

	opt := pim.Options{Lanes: 8, Rows: 96, PresetOutputs: true, NANDBasis: true}
	bench, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	rc := pim.RunConfig{Iterations: 23, RecompileEvery: 7, Seed: 3, Workers: 2}
	results, err := pim.Sweep(bench, opt, rc, nil, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}

	m := obs.NewManifest("sweeptest")
	m.Seed = rc.Seed
	m.Finish()

	var total uint64
	for _, r := range results {
		total += r.Dist.Total()
	}
	if got := m.Counters["core.writes"]; got != int64(total) {
		t.Errorf("manifest core.writes = %d, sum of WriteDist totals = %d", got, total)
	}

	// 23 iterations at recompile-every-7 is 4 epochs per strategy, 18
	// strategies; the 9 +Hw runs replay at most (and with these uneven
	// epochs, exactly) what memoization could not collapse.
	if got := m.Counters["core.epochs"]; got != 18*4 {
		t.Errorf("manifest core.epochs = %d, want %d", got, 18*4)
	}
	if m.Counters["core.hw.replays"]+m.Counters["core.hw.memo_hits"] != 9*4 {
		t.Errorf("hw replays (%d) + memo hits (%d) != hw epochs %d",
			m.Counters["core.hw.replays"], m.Counters["core.hw.memo_hits"], 9*4)
	}

	// Closed-cycle replay accounting: every +Hw epoch-iteration is either
	// replayed op-by-op (one recording pass per unique job) or saved by
	// memoization + closed-form accumulation. 9 +Hw strategies at 23
	// iterations each is 207 epoch-iterations, exactly.
	iters, saved := m.Counters["core.hw.replay_iters"], m.Counters["core.hw.replay_iters_saved"]
	if iters+saved != 9*23 {
		t.Errorf("replay_iters (%d) + replay_iters_saved (%d) != total +Hw epoch-iterations %d",
			iters, saved, 9*23)
	}
	if iters <= 0 || saved <= 0 {
		t.Errorf("replay accounting degenerate: replay_iters=%d replay_iters_saved=%d", iters, saved)
	}
	// The analytic renamer period is recorded once per +Hw simulation and
	// is at least 1, so over 9 strategies the accumulated cycle_len is ≥ 9.
	if got := m.Counters["core.hw.cycle_len"]; got < 9 {
		t.Errorf("manifest core.hw.cycle_len = %d, want ≥ 9 (one period ≥ 1 per +Hw strategy)", got)
	}

	// Software-engine memoization accounting: the 9 software strategies at
	// 4 epochs each group into at most one accumulation per epoch, and
	// groups + memo hits must balance exactly. St×St collapses to one
	// group, and so does St×Bs here (8 lanes at the default byte step make
	// every between rotation the identity), so at least 6 epochs fold.
	swGroups, swHits := m.Counters["core.sw.groups"], m.Counters["core.sw.memo_hits"]
	if swGroups+swHits != 9*4 {
		t.Errorf("sw groups (%d) + memo hits (%d) != software epochs %d", swGroups, swHits, 9*4)
	}
	if swHits < 6 {
		t.Errorf("sw memo hits = %d, want ≥ 6 (St×St and St×Bs fully collapse)", swHits)
	}

	stages := map[string]obs.Stage{}
	for _, st := range m.Stages {
		stages[st.Name] = st
	}
	// One shared WearPlan serves the whole sweep: the plan-build stage
	// must have run exactly once for 18 core.simulate stages.
	if st := stages["core.simulate/plan"]; st.Count != 1 {
		t.Errorf("core.simulate/plan stage count = %d, want 1 (plan shared across the sweep)", st.Count)
	}
	if st := stages["core.simulate"]; st.Count != 18 {
		t.Errorf("core.simulate stage count = %d, want 18", st.Count)
	}
	if st := stages["pim.sweep"]; st.Count != 1 {
		t.Errorf("pim.sweep stage count = %d, want 1", st.Count)
	}
	if st := stages["pim.run"]; st.Count != 18 {
		t.Errorf("pim.run stage count = %d, want 18", st.Count)
	}
	if m.Counters["pim.runs"] != 18 || m.Counters["pim.sweeps"] != 1 {
		t.Errorf("pim counters wrong: runs=%d sweeps=%d",
			m.Counters["pim.runs"], m.Counters["pim.sweeps"])
	}
}

// Re-running the same sweep with the layer disabled must leave every
// counter untouched — the disabled path is the one benchmarks take.
func TestSweepRecordsNothingWhenDisabled(t *testing.T) {
	obs.Reset()
	obs.Disable()

	opt := pim.Options{Lanes: 8, Rows: 96, PresetOutputs: true, NANDBasis: true}
	bench, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	rc := pim.RunConfig{Iterations: 10, RecompileEvery: 5, Seed: 1}
	if _, err := pim.Sweep(bench, opt, rc, nil, pim.MRAM()); err != nil {
		t.Fatal(err)
	}
	s := obs.Capture()
	if len(s.Counters) != 0 || len(s.Stages) != 0 {
		t.Errorf("disabled sweep recorded: %+v", s)
	}
}
