package pim_test

import (
	"bytes"
	"testing"

	"pimendure/pim"
)

// testOptions is a small array for fast integration tests.
func testOptions() pim.Options {
	return pim.Options{Lanes: 16, Rows: 128, PresetOutputs: true, NANDBasis: true}
}

func testRun() pim.RunConfig {
	return pim.RunConfig{Iterations: 60, RecompileEvery: 10, Seed: 1}
}

func TestRunProducesLifetime(t *testing.T) {
	opt := testOptions()
	b, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pim.Run(b, opt, testRun(), pim.StaticStrategy, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "multiplication" {
		t.Errorf("benchmark name %q", res.Benchmark)
	}
	if res.Lifetime.Seconds <= 0 || res.Lifetime.IterationsToFailure <= 0 {
		t.Errorf("degenerate lifetime %+v", res.Lifetime)
	}
	if res.Utilization != 1.0 {
		t.Errorf("mult utilization = %v", res.Utilization)
	}
	if res.MaxWritesPerIteration <= 0 {
		t.Error("no writes recorded")
	}
	if res.Imbalance <= 1 {
		t.Errorf("static multiply should be imbalanced, got max/mean %v", res.Imbalance)
	}
}

func TestSweepAll18(t *testing.T) {
	opt := testOptions()
	opt.LowestFirstAlloc = true // adversarial allocator: big, assertable gains
	b, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	results, err := pim.Sweep(b, opt, testRun(), nil, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 18 {
		t.Fatalf("%d results", len(results))
	}
	imp, err := pim.Improvements(results)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted descending; baseline factor exactly 1; best ≥ 1.
	if imp[len(imp)-1].Factor > imp[0].Factor {
		t.Error("improvements not sorted")
	}
	var sawBase bool
	for _, i := range imp {
		if i.Strategy == pim.StaticStrategy {
			sawBase = true
			if i.Factor != 1 {
				t.Errorf("baseline factor = %v", i.Factor)
			}
		}
		if i.Factor < 0.999 {
			t.Errorf("%s worsened lifetime: %v", i.Strategy.Name(), i.Factor)
		}
	}
	if !sawBase {
		t.Error("baseline missing")
	}
	if imp[0].Factor <= 1.05 {
		t.Errorf("best strategy should improve the imbalanced multiply, got %v", imp[0].Factor)
	}
}

func TestImprovementsRequireBaseline(t *testing.T) {
	opt := testOptions()
	b, _ := pim.NewParallelMult(opt, 4)
	ra := pim.Strategy{Within: pim.Random, Between: pim.Random}
	results, err := pim.Sweep(b, opt, testRun(), []pim.Strategy{ra}, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pim.Improvements(results); err == nil {
		t.Error("missing baseline accepted")
	}
}

func TestTechnologyOrdering(t *testing.T) {
	opt := testOptions()
	b, _ := pim.NewParallelMult(opt, 4)
	rc := testRun()
	mram, err := pim.Run(b, opt, rc, pim.StaticStrategy, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}
	rram, err := pim.Run(b, opt, rc, pim.StaticStrategy, pim.RRAM())
	if err != nil {
		t.Fatal(err)
	}
	// MRAM endures 10⁴× longer than RRAM at the same write distribution.
	ratio := mram.Lifetime.Seconds / rram.Lifetime.Seconds
	if ratio < 0.99e4 || ratio > 1.01e4 {
		t.Errorf("MRAM/RRAM lifetime ratio = %v, want 1e4", ratio)
	}
}

func TestHeatmapExport(t *testing.T) {
	opt := testOptions()
	b, _ := pim.NewParallelMult(opt, 4)
	res, err := pim.Run(b, opt, testRun(), pim.StaticStrategy, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}
	g, err := pim.Heatmap(res.Dist, 64)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows > 64 || g.Cols > 64 {
		t.Errorf("heatmap %dx%d exceeds cap", g.Rows, g.Cols)
	}
	if g.Max() != 1 {
		t.Errorf("normalized max = %v", g.Max())
	}
	var png, pgm bytes.Buffer
	if err := pim.WriteHeatmapPNG(&png, g, 2); err != nil {
		t.Fatal(err)
	}
	if err := pim.WriteHeatmapPGM(&pgm, g); err != nil {
		t.Fatal(err)
	}
	if png.Len() == 0 || pgm.Len() == 0 {
		t.Error("empty renders")
	}
	// Full resolution (no cap).
	full, err := pim.Heatmap(res.Dist, 0)
	if err != nil {
		t.Fatal(err)
	}
	if full.Rows != opt.Rows || full.Cols != opt.Lanes {
		t.Errorf("full heatmap %dx%d", full.Rows, full.Cols)
	}
}

func TestVerifyAllBenchmarks(t *testing.T) {
	opt := testOptions()
	data := func(slot, lane int) bool { return (slot*7+lane*13)%5 < 2 }
	mult, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	dot, err := pim.NewDotProduct(opt, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := pim.NewConvolution(opt, 4, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	add, err := pim.NewVectorAdd(opt, 8)
	if err != nil {
		t.Fatal(err)
	}
	hw := pim.Strategy{Within: pim.Random, Between: pim.ByteShift, Hw: true}
	for _, b := range []*pim.Benchmark{mult, dot, conv, add} {
		if err := pim.Verify(b, opt, pim.StaticStrategy, data); err != nil {
			t.Errorf("%s static: %v", b.Name, err)
		}
		if err := pim.Verify(b, opt, hw, data); err != nil {
			t.Errorf("%s remapped: %v", b.Name, err)
		}
		if err := pim.Verify(b, opt, pim.StaticStrategy, nil); err != nil {
			t.Errorf("%s zero data: %v", b.Name, err)
		}
	}
}

func TestPaperBenchmarksCompile(t *testing.T) {
	opt := pim.Options{Lanes: 8, Rows: 1024, PresetOutputs: true, NANDBasis: true}
	bs, err := pim.PaperBenchmarks(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Fatalf("%d benchmarks", len(bs))
	}
}

func TestAnalyticHelpers(t *testing.T) {
	opt := pim.DefaultOptions()
	if got := pim.WriteAmplification(opt, 32); got != 9824.0/64 {
		t.Errorf("amplification = %v", got)
	}
	secs := pim.UpperBoundSeconds(1024, 1024, pim.MRAM())
	if secs < 3.07e6 || secs > 3.08e6 {
		t.Errorf("Eq.2 = %v", secs)
	}
	ops := pim.UpperBoundOps(1024, 1024, pim.MRAM(), 9824)
	if ops < 1.06e14 || ops > 1.08e14 {
		t.Errorf("Eq.1 = %v", ops)
	}
	if pim.UsableFraction(1024, 0.01) > 0.1 {
		t.Error("usable fraction should collapse at 1% failures")
	}
	pts, err := pim.FaultCurve(32, 32, []float64{0, 0.01}, 50, 1)
	if err != nil || len(pts) != 2 {
		t.Errorf("fault curve: %v %d", err, len(pts))
	}
	if len(pim.Technologies()) == 0 {
		t.Error("no technologies")
	}
}

func TestDefaultOptions(t *testing.T) {
	opt := pim.DefaultOptions()
	if opt.Lanes != 1024 || opt.Rows != 1024 || !opt.PresetOutputs || !opt.NANDBasis {
		t.Errorf("defaults %+v", opt)
	}
}

func TestRunRejectsBadTechnology(t *testing.T) {
	opt := testOptions()
	b, _ := pim.NewParallelMult(opt, 4)
	bad := pim.Technology{Name: "bad"}
	if _, err := pim.Run(b, opt, testRun(), pim.StaticStrategy, bad); err == nil {
		t.Error("invalid technology accepted")
	}
}
