package pim_test

import (
	"fmt"

	"pimendure/pim"
)

// The canonical flow: compile a kernel, verify it computes, accumulate
// wear, estimate lifetime.
func Example() {
	opt := pim.Options{Lanes: 64, Rows: 1024, PresetOutputs: true, NANDBasis: true}
	bench, err := pim.NewParallelMult(opt, 32)
	if err != nil {
		panic(err)
	}
	res, err := pim.Run(bench, opt,
		pim.RunConfig{Iterations: 1000, RecompileEvery: 100, Seed: 1},
		pim.Strategy{Within: pim.Random, Between: pim.Static, Hw: true},
		pim.MRAM())
	if err != nil {
		panic(err)
	}
	fmt.Printf("utilization %.0f%%, lifetime %.1f days\n", res.Utilization*100, res.Lifetime.Days())
	// Output: utilization 100%, lifetime 33.1 days
}

// §3.1's headline arithmetic is available without simulation.
func ExampleWriteAmplification() {
	fmt.Printf("%.1fx\n", pim.WriteAmplification(pim.DefaultOptions(), 32))
	// Output: 153.5x
}

// Eq. 2: the perfectly-balanced upper bound on array lifetime.
func ExampleUpperBoundSeconds() {
	days := pim.UpperBoundSeconds(1024, 1024, pim.MRAM()) / 86400
	fmt.Printf("%.2f days\n", days)
	// Output: 35.56 days
}

// Fig. 11b's closed form: failed cells poison whole bit addresses.
func ExampleUsableFraction() {
	fmt.Printf("%.4f\n", pim.UsableFraction(1024, 0.01))
	// Output: 0.0000
}

// Verify proves a compiled kernel computes exactly, under any strategy.
func ExampleVerify() {
	opt := pim.Options{Lanes: 8, Rows: 256, PresetOutputs: true, NANDBasis: true}
	bench, err := pim.NewVectorAdd(opt, 16)
	if err != nil {
		panic(err)
	}
	data := func(slot, lane int) bool { return (slot*lane)%3 == 1 }
	err = pim.Verify(bench, opt, pim.Strategy{Within: pim.ByteShift, Hw: true}, data)
	fmt.Println(err)
	// Output: <nil>
}
