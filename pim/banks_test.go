package pim_test

import (
	"testing"

	"pimendure/pim"
)

// BankStripe must split exactly rc.Iterations across the organization,
// fill the endurance from the technology, and project a finite system
// lifetime.
func TestBankStripeSmoke(t *testing.T) {
	opt := testOptions()
	b, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pim.BankStripe(b, opt, testRun(), pim.StaticStrategy, pim.MRAM(), pim.BankConfig{
		Org: pim.FlatOrganization(4), Policy: pim.RoundRobinBanks,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, br := range res.Banks {
		total += br.Iterations
		if br.Iterations > 0 && br.Endurance != pim.MRAM().Endurance {
			t.Errorf("bank %d endurance %g, want the technology's %g", br.Bank, br.Endurance, pim.MRAM().Endurance)
		}
	}
	if total != testRun().Iterations {
		t.Errorf("banks absorbed %d iterations, want %d", total, testRun().Iterations)
	}
	if res.BanksTouched != 4 {
		t.Errorf("touched %d banks, want 4", res.BanksTouched)
	}
	single, err := pim.BankStripe(b, opt, testRun(), pim.StaticStrategy, pim.MRAM(), pim.BankConfig{
		Org: pim.SingleBank(), Policy: pim.RoundRobinBanks,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.SystemIterationsToFailure > single.SystemIterationsToFailure) {
		t.Errorf("4-bank stripe projects %g iterations, single bank %g — striping should extend lifetime",
			res.SystemIterationsToFailure, single.SystemIterationsToFailure)
	}
}

// SampleEvery must attach a per-bank wear trajectory to every touched
// bank.
func TestBankStripeWearSeries(t *testing.T) {
	opt := testOptions()
	b, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	rc := testRun()
	rc.SampleEvery = 2
	rc.SeriesPrefix = "t1."
	res, err := pim.BankStripe(b, opt, rc, pim.StaticStrategy, pim.MRAM(), pim.BankConfig{
		Org: pim.FlatOrganization(2), Policy: pim.RoundRobinBanks,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, br := range res.Banks {
		if br.Iterations == 0 {
			continue
		}
		if br.Wear == nil || br.Wear.Len() == 0 {
			t.Errorf("bank %d has no wear trajectory", br.Bank)
		}
	}
}

// The PlanCache-backed variant must share one plan across policy
// comparisons.
func TestPlanCacheBankStripe(t *testing.T) {
	opt := testOptions()
	b, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	cache := pim.NewPlanCache(2)
	var results []*pim.StripeResult
	for i, p := range pim.BankPolicies() {
		res, hit, err := cache.BankStripe(b, opt, testRun(), pim.StaticStrategy, pim.MRAM(), pim.BankConfig{
			Org: pim.DDR4Organization(), Policy: p,
		})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if hit != (i > 0) {
			t.Errorf("%s: cache hit = %v on call %d", p, hit, i)
		}
		results = append(results, res)
	}
	// Identical fresh banks: wear-aware must agree with round-robin.
	if results[0].SystemIterationsToFailure != results[1].SystemIterationsToFailure {
		t.Errorf("wear-aware on fresh identical banks projects %g, round-robin %g",
			results[1].SystemIterationsToFailure, results[0].SystemIterationsToFailure)
	}
}
