// The fleet-survival facade: B-life quantiles (B1/B10/B50 — iterations
// by which 1%/10%/50% of a device fleet has seen its first cell failure)
// for every strategy × technology × σ combination of one benchmark, on
// the internal/fleet order-statistic engine.
//
// The paper ranks configurations by the deterministic Eq. 4 lifetime
// (Fig. 17), which is the fleet *median* under symmetric variability.
// Fleet operators care about the warranty tail instead: the B1 life of a
// million-device population. Fleet computes both in one pass so the two
// rankings can be compared directly (see cmd/fleet and EXPERIMENTS.md).
//
// The work factors exactly along the engine's reuse boundaries:
//
//   - the WearPlan is per-benchmark (shared across all strategies, and
//     across calls via PlanCache.Fleet);
//   - the simulated write distribution and its group collapse are
//     per-strategy (technologies and σ never touch the simulator);
//   - the hazard-inverse table is per-(strategy, σ), cached on the
//     Groups and shared by every technology, whose median endurance is
//     only a shift in log-lifetime.
//
// So an 18-strategy × 4-technology × 3-σ study runs 18 simulations and
// 54 table builds — not 216 of each — and every remaining unit of work
// is O(devices) draws at millions of devices per second.
package pim

import (
	"fmt"

	"pimendure/internal/core"
	"pimendure/internal/fleet"
	"pimendure/internal/obs"
)

// obsFleets counts fleet-survival studies (one per Fleet call).
var obsFleets = obs.GetCounter("pim.fleets")

// DefaultFleetSigma is the lognormal shape used when FleetConfig leaves
// Sigmas empty — the middle of the 0.3–1 spread reported for NVM
// endurance variability.
const DefaultFleetSigma = 0.3

// FleetConfig sizes a fleet-survival study.
type FleetConfig struct {
	// Devices is the simulated fleet population per sweep point (must be
	// positive; 10⁵–10⁷ is cheap on the fleet engine).
	Devices int
	// Sigmas are the lognormal endurance shapes to sweep; empty selects
	// {DefaultFleetSigma}.
	Sigmas []float64
	// Seed fixes the draw streams. Every sweep point reuses the same
	// seed deliberately — common random numbers: all points see the same
	// fleet of Exp(1) draws, so cross-point comparisons (the B1 ranking)
	// are free of Monte Carlo noise between points.
	Seed int64
	// Quantiles are the survival probabilities to extract; nil selects
	// B1/B10/B50 (fleet.DefaultQuantiles).
	Quantiles []float64
	// Series, when non-nil, receives per-draw-batch progress rows with
	// the cumulative device count across the whole study — the serving
	// layer's progress feed. Must have exactly one column.
	Series *WearSeries
}

// FleetPoint is one strategy × technology × σ cell of a fleet study.
type FleetPoint struct {
	Benchmark  string
	Strategy   Strategy
	Technology Technology
	Sigma      float64
	// Devices is the simulated population size.
	Devices int
	// Groups and Cells describe the order-statistic collapse: distinct
	// write-count groups versus written cells per device.
	Groups, Cells int
	// MeanIterations is the fleet-mean first-failure iteration count.
	MeanIterations float64
	// Quantiles holds the B-life iteration counts, parallel to
	// FleetConfig.Quantiles (default B1, B10, B50).
	Quantiles []float64
	// DeterministicIterations is the paper's uniform-endurance Eq. 4
	// value — the Fig. 17 ranking metric — for comparison.
	DeterministicIterations float64
	// StepsPerIteration is the benchmark's sequential latency, for
	// converting iterations to wall-clock time.
	StepsPerIteration int
}

// Seconds converts an iteration count of this point (a B-life, the mean,
// or the deterministic value) to wall-clock seconds on the point's
// technology.
func (p FleetPoint) Seconds(iterations float64) float64 {
	return iterations * float64(p.StepsPerIteration) * p.Technology.SwitchSeconds
}

// Fleet runs a fleet-survival study: it simulates the benchmark once per
// strategy, collapses each write distribution into write-count groups,
// and draws fc.Devices devices per technology × σ against each. A nil
// strategy list means all 18; a nil technology list means the paper's
// four device models. Points are ordered strategy-major, then
// technology, then σ.
func Fleet(b *Benchmark, opt Options, rc RunConfig, strategies []Strategy, techs []Technology, fc FleetConfig) ([]FleetPoint, error) {
	sp := obs.StartSpan("pim.fleet")
	defer sp.End()
	obsFleets.Add(1)
	plan := core.NewWearPlan(b.Trace, opt.Rows, opt.PresetOutputs)
	return fleetPlanned(plan, b, rc, strategies, techs, fc)
}

// Fleet is the cache-aware fleet entry point: identical to Fleet except
// the per-benchmark WearPlan is reused across calls when the benchmark
// fingerprint matches, with the same hit semantics as PlanCache.Sweep.
func (c *PlanCache) Fleet(b *Benchmark, opt Options, rc RunConfig, strategies []Strategy, techs []Technology, fc FleetConfig) (points []FleetPoint, hit bool, err error) {
	sp := obs.StartSpan("pim.fleet")
	defer sp.End()
	obsFleets.Add(1)
	plan, hit := c.Plan(b, opt)
	points, err = fleetPlanned(plan, b, rc, strategies, techs, fc)
	return points, hit, err
}

// fleetPlanned is Fleet against a prebuilt (possibly cached) WearPlan —
// the shared inner body of Fleet and PlanCache.Fleet.
//
// Strategies run sequentially, each handing the full rc.Workers budget
// to its simulator and then to the draw engine: unlike Sweep's
// strategy-sharded fan-out, the fleet draws inside one strategy already
// parallelize perfectly, and holding one write distribution at a time
// keeps the study's footprint at one histogram set regardless of how
// many of the 18 strategies it covers.
func fleetPlanned(plan *core.WearPlan, b *Benchmark, rc RunConfig, strategies []Strategy, techs []Technology, fc FleetConfig) ([]FleetPoint, error) {
	if fc.Devices <= 0 {
		return nil, fmt.Errorf("pim: fleet devices must be positive, got %d", fc.Devices)
	}
	if strategies == nil {
		strategies = AllStrategies()
	}
	if techs == nil {
		techs = Technologies()
	}
	for _, t := range techs {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	sigmas := fc.Sigmas
	if len(sigmas) == 0 {
		sigmas = []float64{DefaultFleetSigma}
	}
	for _, s := range sigmas {
		if s < 0 {
			return nil, fmt.Errorf("pim: negative fleet sigma %v", s)
		}
	}

	points := make([]FleetPoint, 0, len(strategies)*len(techs)*len(sigmas))
	var seriesBase float64
	for _, s := range strategies {
		sim := core.SimConfig{
			Rows:           plan.Rows(),
			PresetOutputs:  plan.PresetOutputs(),
			Iterations:     rc.Iterations,
			RecompileEvery: rc.RecompileEvery,
			Seed:           rc.Seed,
			Workers:        rc.Workers,
		}
		dist, err := plan.Simulate(sim, s)
		if err != nil {
			return nil, err
		}
		g, err := fleet.GroupCounts(dist.Counts, dist.Iterations)
		if err != nil {
			return nil, fmt.Errorf("pim: fleet %s/%s: %w", b.Name, s.Name(), err)
		}
		steps := dist.StepsPerIteration
		// The groups carry everything the draws need; the histogram goes
		// back to the plan's arena before the next strategy simulates.
		dist.Release()
		for _, tech := range techs {
			for _, sigma := range sigmas {
				fm := fleet.Model{MedianEndurance: tech.Endurance, Sigma: sigma}
				res, err := fm.Survive(g, fleet.Params{
					Devices:    fc.Devices,
					Seed:       fc.Seed,
					Workers:    rc.Workers,
					Quantiles:  fc.Quantiles,
					Series:     fc.Series,
					SeriesBase: seriesBase,
				})
				if err != nil {
					return nil, fmt.Errorf("pim: fleet %s/%s/%s: %w", b.Name, s.Name(), tech.Name, err)
				}
				seriesBase += float64(fc.Devices)
				points = append(points, FleetPoint{
					Benchmark:               b.Name,
					Strategy:                s,
					Technology:              tech,
					Sigma:                   sigma,
					Devices:                 res.Devices,
					Groups:                  res.Groups,
					Cells:                   res.Cells,
					MeanIterations:          res.Mean,
					Quantiles:               res.Quantiles,
					DeterministicIterations: res.DeterministicIterations,
					StepsPerIteration:       steps,
				})
			}
		}
	}
	return points, nil
}
