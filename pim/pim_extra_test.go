package pim_test

import (
	"bytes"
	"testing"

	"pimendure/pim"
)

func TestSaveLoadDistRoundTrip(t *testing.T) {
	opt := testOptions()
	b, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pim.Run(b, opt, testRun(), pim.StaticStrategy, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pim.SaveDist(&buf, res.Dist); err != nil {
		t.Fatal(err)
	}
	back, err := pim.LoadDist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(res.Dist) {
		t.Error("distribution round trip mismatch")
	}
	// The reloaded distribution renders identically.
	g1, err := pim.Heatmap(res.Dist, 32)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := pim.Heatmap(back, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g1.Data {
		if g1.Data[i] != g2.Data[i] {
			t.Fatal("reloaded heatmap differs")
		}
	}
}

func TestSaveTrace(t *testing.T) {
	opt := testOptions()
	b, err := pim.NewVectorAdd(opt, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pim.SaveTrace(&buf, b); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty trace serialization")
	}
}

func TestEnergyPerIteration(t *testing.T) {
	opt := testOptions()
	b, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, m := range pim.EnergyModels() {
		br, err := pim.EnergyPerIteration(b, opt, m)
		if err != nil {
			t.Fatal(err)
		}
		if br.Total() <= 0 || br.WriteJ <= br.ReadJ {
			t.Errorf("%s: implausible breakdown %+v", m.Name, br)
		}
		if br.Total() <= prev {
			t.Errorf("%s should cost more than the previous model", m.Name)
		}
		prev = br.Total()
	}
	if _, err := pim.EnergyPerIteration(b, opt, pim.EnergyModel{Name: "bad"}); err == nil {
		t.Error("invalid energy model accepted")
	}
}

func TestLifetimeUnderVariability(t *testing.T) {
	opt := testOptions()
	b, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pim.Run(b, opt, testRun(), pim.StaticStrategy, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}
	vr, err := pim.LifetimeUnderVariability(res, pim.MRAM(), 0.5, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if vr.MeanIterations <= 0 || vr.MeanIterations >= vr.DeterministicIterations {
		t.Errorf("variability mean %g should undercut deterministic %g",
			vr.MeanIterations, vr.DeterministicIterations)
	}
}

func TestChipLifetime(t *testing.T) {
	opt := testOptions()
	b, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pim.Run(b, opt, testRun(), pim.StaticStrategy, pim.MRAM())
	if err != nil {
		t.Fatal(err)
	}
	noSpare := pim.ChipConfig{Arrays: 64, DutyCycle: 1, Sigma: 0.4}
	spared := pim.ChipConfig{Arrays: 64, SpareFraction: 0.25, DutyCycle: 1, Sigma: 0.4}
	a, err := pim.ChipLifetime(res.Lifetime, noSpare, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := pim.ChipLifetime(res.Lifetime, spared, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bb.MeanSeconds <= a.MeanSeconds {
		t.Error("spares should extend chip life")
	}
	if _, err := pim.ChipLifetime(res.Lifetime, pim.ChipConfig{}, 10, 1); err == nil {
		t.Error("invalid chip config accepted")
	}
}

func TestOptimizeBenchmark(t *testing.T) {
	opt := testOptions()
	b, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	opted, st := pim.Optimize(b)
	// Workload compiler output is already minimal: identity expected.
	if st.RemovedGates != 0 {
		t.Errorf("removed %d gates from an already-minimal kernel", st.RemovedGates)
	}
	// The optimized benchmark still verifies exactly.
	data := func(slot, lane int) bool { return (slot+lane)%3 == 1 }
	if err := pim.Verify(opted, opt, pim.StaticStrategy, data); err != nil {
		t.Error(err)
	}
	if opted.Name != b.Name {
		t.Error("name lost")
	}
}

func TestBNNLayerThroughFacade(t *testing.T) {
	opt := testOptions()
	b, err := pim.NewBNNLayer(opt, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := pim.Verify(b, opt, pim.Strategy{Within: pim.Random, Hw: true},
		func(slot, lane int) bool { return (slot+lane)%2 == 0 }); err != nil {
		t.Error(err)
	}
}

// Sweep's bounded pool must return exactly what per-strategy Run calls
// return, bit for bit, for any worker budget — including budgets smaller
// and larger than the strategy count.
func TestSweepBoundedWorkersMatchesRun(t *testing.T) {
	opt := testOptions()
	b, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	strategies := []pim.Strategy{
		pim.StaticStrategy,
		{Within: pim.Random, Between: pim.ByteShift},
		{Within: pim.ByteShift, Between: pim.Random, Hw: true},
		{Within: pim.Random, Between: pim.Random, Hw: true},
	}
	var baseline []*pim.Result
	for _, workers := range []int{1, 2, 32} {
		rc := testRun()
		rc.Workers = workers
		results, err := pim.Sweep(b, opt, rc, strategies, pim.MRAM())
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(strategies) {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		for i, r := range results {
			if r.Strategy != strategies[i] {
				t.Errorf("workers=%d: result %d out of order", workers, i)
			}
			single, err := pim.Run(b, opt, rc, strategies[i], pim.MRAM())
			if err != nil {
				t.Fatal(err)
			}
			if !r.Dist.Equal(single.Dist) {
				t.Errorf("workers=%d: sweep result for %s differs from direct Run",
					workers, strategies[i].Name())
			}
		}
		if baseline == nil {
			baseline = results
		} else {
			for i := range results {
				if !results[i].Dist.Equal(baseline[i].Dist) {
					t.Errorf("worker budget changed the %s distribution", strategies[i].Name())
				}
			}
		}
	}
}
