package pimendure_test

import (
	"fmt"

	"pimendure/pim"
)

// Example is the module overview referenced from doc.go: compile a
// kernel, prove it computes bit-exactly, sweep all 18 load-balancing
// configurations, and rank them by lifetime improvement — the whole
// pipeline of the paper's evaluation in a dozen lines. A small 8×96
// array keeps it fast; cmd/endurance-report runs the same flow at the
// paper's 1024×1024 × 100 000-iteration scale.
func Example() {
	opt := pim.Options{Lanes: 8, Rows: 96, PresetOutputs: true, NANDBasis: true}
	bench, err := pim.NewParallelMult(opt, 4)
	if err != nil {
		panic(err)
	}
	// Functional ground truth: one bit-accurate iteration must match the
	// kernel's reference model.
	if err := pim.Verify(bench, opt, pim.StaticStrategy, nil); err != nil {
		panic(err)
	}
	// Endurance: accumulate wear under every configuration and rank by
	// improvement over the St×St baseline.
	results, err := pim.Sweep(bench, opt,
		pim.RunConfig{Iterations: 100, RecompileEvery: 10, Seed: 1}, nil, pim.MRAM())
	if err != nil {
		panic(err)
	}
	imps, err := pim.Improvements(results)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d-gate trace, %d configurations\n", len(bench.Trace.Ops), len(results))
	fmt.Printf("best: %s, %.1fx the StxSt lifetime\n", imps[0].Strategy.Name(), imps[0].Factor)
	// Output:
	// 124-gate trace, 18 configurations
	// best: BsxSt+Hw, 1.6x the StxSt lifetime
}
