# Build/verify entry points. `make ci` is what the repo considers green:
# vet, the documentation linter, and the full test suite under the race
# detector (the wear engine and pim.Sweep are concurrent; racing them is
# part of tier-1).

GO ?= go

# Packages whose exported symbols must all carry doc comments (public
# API + instrumented engine layers). Enforced by `make doclint`.
DOC_PKGS = ./pim ./pim/kernel ./internal/obs ./internal/core ./internal/pool

.PHONY: all build vet test race bench report ci doclint

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Doc-lint: fail on undocumented exported symbols (revive `exported`
# rule stand-in, zero dependencies).
doclint:
	$(GO) run ./internal/tools/doclint $(DOC_PKGS)

# One benchmark pass; BenchmarkHwEngine/speedup reports the parallel +
# memoized engine's gain over the serial reference as `speedup_x`, and
# BenchmarkHwEngine/obs-overhead reports the observability layer's
# enabled-vs-disabled cost on the same sweep as `obs_overhead_x`
# (disabled cost is the <2% design budget).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Full paper reproduction (use -quick via REPORT_FLAGS for a fast pass).
report:
	$(GO) run ./cmd/endurance-report $(REPORT_FLAGS)

ci: vet doclint race
