# Build/verify entry points. `make ci` is what the repo considers green:
# vet, the documentation linter, and the full test suite under the race
# detector (the wear engine and pim.Sweep are concurrent; racing them is
# part of tier-1).

GO ?= go

# Packages whose exported symbols must all carry doc comments (public
# API + instrumented engine layers). Enforced by `make doclint`.
DOC_PKGS = ./pim ./pim/kernel ./internal/obs ./internal/core ./internal/pool ./internal/serve ./internal/system ./internal/device ./internal/fleet

.PHONY: all build vet test race race-obs race-core race-serve race-system race-fleet bench bench-alloc bench-json bench-current benchdiff report ci doclint promlint

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The telemetry layer (event ring, series registry, live servers) is the
# most lock-sensitive code in the repo; run its suite under the race
# detector explicitly so a failure names the layer, not the world.
race-obs:
	$(GO) test -race ./internal/obs/...

# The wear engines shard epoch groups over the worker pool and share one
# immutable WearPlan across concurrent strategies; race their suite
# explicitly so an engine-level data race is named as such.
race-core:
	$(GO) test -race ./internal/core/...

# The serving layer multiplexes one queue, one plan cache and one jobs
# map across every concurrent request — including a 1000-connection
# storm test; race it explicitly so a serving-path data race is named.
race-serve:
	$(GO) test -race ./internal/serve/...

# The bank scheduler runs per-bank simulations concurrently over one
# shared WearPlan (and the pim facade layers a PlanCache on top); race
# the system suite explicitly so a cross-bank data race is named.
race-system:
	$(GO) test -race ./internal/system/...

# The fleet engine shards device batches over the worker pool, caches
# hazard tables on shared Groups and recycles sample buffers through a
# package free list; race its suite (plus the pim.Fleet facade tests)
# explicitly so a draw-path data race is named.
race-fleet:
	$(GO) test -race ./internal/fleet/... ./pim/...

# Doc-lint: fail on undocumented exported symbols (revive `exported`
# rule stand-in, zero dependencies).
doclint:
	$(GO) run ./internal/tools/doclint $(DOC_PKGS)

# Metrics-lint: self-test the repository's Prometheus exposition —
# every family needs # HELP/# TYPE, names must stay in the metric-name
# alphabet, histogram buckets must be cumulative and close at an
# le="+Inf" equal to _count. Point it at a live server with
# `go run ./internal/tools/promlint -target http://localhost:8090`.
promlint:
	$(GO) run ./internal/tools/promlint

# One benchmark pass; BenchmarkHwEngine/speedup reports the parallel +
# memoized engine's gain over the serial reference as `speedup_x`, and
# BenchmarkHwEngine/obs-overhead reports the observability layer's
# enabled-vs-disabled cost on the same sweep as `obs_overhead_x`
# (disabled cost is the <2% design budget).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Allocation smoke: run the steady-state hot-path benchmarks (the shared-
# plan sweeps, the serving path and the packed array) once with -benchmem
# and print one line per benchmark — B/op and allocs/op at a glance. The
# arena discipline (internal/core/arena.go) is what keeps these flat;
# `make ci` runs this as a 1x smoke so an allocation leak in the hot path
# is visible even before the benchdiff gate compares snapshots.
bench-alloc:
	@$(GO) test -run '^$$' -bench 'BenchmarkSweep$$|BenchmarkServeSweep|BenchmarkArrayIteration|BenchmarkHwEngine|BenchmarkFleet' \
		-benchmem -benchtime=1x . \
		| awk '/^Benchmark/ { name=$$1; bop="-"; aop="-"; \
			for (i=2; i<NF; i++) { if ($$(i+1)=="B/op") bop=$$i; if ($$(i+1)=="allocs/op") aop=$$i } \
			printf "%-60s %14s B/op %10s allocs/op\n", name, bop, aop }'

# Machine-readable benchmark snapshot: run the engine benchmark suite
# (the root package's per-figure benchmarks) and convert the output to
# BENCH_engine.json via internal/tools/benchjson. Committed so perf
# claims (speedup_x of the closed-cycle +Hw replay and the bit-packed
# array) are diffable; regenerate after engine changes with
# BENCHTIME=5x or higher for steadier numbers.
BENCHTIME ?= 1x
bench-json:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) . \
		| $(GO) run ./internal/tools/benchjson -o BENCH_engine.json

# Fresh benchmark snapshot for the regression gate, kept out of the
# committed baseline's path (out/ is gitignored).
bench-current:
	@mkdir -p out
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) . \
		| $(GO) run ./internal/tools/benchjson -o out/bench_current.json

# Benchmark regression gate: compare a fresh run against the committed
# BENCH_engine.json and report ns/op deltas. Advisory by default (single
# -benchtime=1x runs are noisy); pass BENCHDIFF_FLAGS=-strict to fail on
# a >25% regression, e.g. in a scheduled CI job with BENCHTIME=5x.
BENCHDIFF_FLAGS ?=
benchdiff: bench-current
	$(GO) run ./internal/tools/benchdiff -new out/bench_current.json $(BENCHDIFF_FLAGS)

# Full paper reproduction (use -quick via REPORT_FLAGS for a fast pass).
report:
	$(GO) run ./cmd/endurance-report $(REPORT_FLAGS)

# `bench` doubles as the CI benchmark smoke: -benchtime=1x executes every
# benchmark body once, catching bit-rot in the measurement harness.
# `bench-alloc` prints the hot-path B/op / allocs/op one-liners, and
# `benchdiff` then diffs a fresh snapshot — BenchmarkHwEngine, the
# BenchmarkSweep sweep benchmarks, BenchmarkServeSweep's cold/cached
# serving-throughput pair and BenchmarkFleet's draws/cold/cached/speedup
# quartet included, timing and allocs/op both — against the committed
# baseline: advisory locally, strict when BENCHDIFF_FLAGS=-strict.
ci: vet doclint promlint race-obs race-core race-serve race-system race-fleet race bench bench-alloc benchdiff
