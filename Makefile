# Build/verify entry points. `make ci` is what the repo considers green:
# vet plus the full test suite under the race detector (the wear engine
# and pim.Sweep are concurrent; racing them is part of tier-1).

GO ?= go

.PHONY: all build vet test race bench report ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark pass; BenchmarkHwEngine/speedup reports the parallel +
# memoized engine's gain over the serial reference as `speedup_x`.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Full paper reproduction (use -quick via REPORT_FLAGS for a fast pass).
report:
	$(GO) run ./cmd/endurance-report $(REPORT_FLAGS)

ci: vet race
