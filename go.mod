module pimendure

go 1.22
